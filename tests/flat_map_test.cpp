// Unit tests for FlatMap, the open-addressing scratch map behind the
// inner loop's hot-path state (Σtot cache, Σin pre-aggregation, community
// bookkeeping, reference counts).
#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.hpp"

namespace plv {
namespace {

TEST(FlatMap, RefDefaultConstructsOnFirstAccess) {
  FlatMap<double> m;
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.ref(7), 0.0);
  m.ref(7) += 2.5;
  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_DOUBLE_EQ(*m.find(7), 2.5);
  EXPECT_EQ(m.find(8), nullptr);
}

TEST(FlatMap, FindOnEmptyMapIsNull) {
  FlatMap<int> m;
  EXPECT_EQ(m.find(0), nullptr);
  EXPECT_FALSE(m.contains(123));
  EXPECT_FALSE(m.erase(123));
}

TEST(FlatMap, EraseBackwardShiftsProbeChains) {
  FlatMap<int> m;
  // Grow to a known capacity, then hammer keys into overlapping chains.
  m.reserve(64);
  const std::size_t cap = m.capacity();
  for (vid_t k = 0; k < 48; ++k) m.ref(k) = static_cast<int>(k) * 3;
  EXPECT_EQ(m.capacity(), cap);  // no rehash mid-test
  for (vid_t k = 0; k < 48; k += 2) EXPECT_TRUE(m.erase(k));
  EXPECT_EQ(m.size(), 24u);
  for (vid_t k = 0; k < 48; ++k) {
    if (k % 2 == 0) {
      EXPECT_FALSE(m.contains(k)) << k;
    } else {
      ASSERT_NE(m.find(k), nullptr) << k;
      EXPECT_EQ(*m.find(k), static_cast<int>(k) * 3);
    }
  }
}

TEST(FlatMap, ClearKeepsCapacity) {
  FlatMap<int> m(100);
  const std::size_t cap = m.capacity();
  for (vid_t k = 1; k <= 100; ++k) m.ref(k) = 1;
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_FALSE(m.contains(50));
}

TEST(FlatMap, ForEachVisitsEveryEntryOnce) {
  FlatMap<int> m;
  int expected_sum = 0;
  for (vid_t k = 10; k < 200; k += 7) {
    m.ref(k) = static_cast<int>(k);
    expected_sum += static_cast<int>(k);
  }
  int sum = 0;
  std::size_t visits = 0;
  m.for_each([&](vid_t k, int& v) {
    EXPECT_EQ(static_cast<int>(k), v);
    sum += v;
    ++visits;
  });
  EXPECT_EQ(visits, m.size());
  EXPECT_EQ(sum, expected_sum);
}

TEST(FlatMap, GrowsFromEmptyAndPreservesContents) {
  FlatMap<vid_t> m;  // no reserve: every growth path exercised
  for (vid_t k = 0; k < 10000; ++k) m.ref(k * 7 + 1) = k;
  EXPECT_EQ(m.size(), 10000u);
  for (vid_t k = 0; k < 10000; ++k) {
    ASSERT_NE(m.find(k * 7 + 1), nullptr) << k;
    EXPECT_EQ(*m.find(k * 7 + 1), k);
  }
}

TEST(FlatMap, MatchesReferenceMapUnderRandomChurn) {
  FlatMap<int> m;
  std::unordered_map<vid_t, int> ref;
  Xoshiro256 rng(99);
  for (int i = 0; i < 50000; ++i) {
    const vid_t key = static_cast<vid_t>(rng.next_below(500));
    switch (rng.next_below(3)) {
      case 0:
        m.ref(key) += 1;
        ref[key] += 1;
        break;
      case 1: {
        const bool erased = m.erase(key);
        EXPECT_EQ(erased, ref.erase(key) > 0);
        break;
      }
      default: {
        const int* found = m.find(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
  }
  EXPECT_EQ(m.size(), ref.size());
  m.for_each([&](vid_t k, int& v) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << k;
    EXPECT_EQ(it->second, v);
  });
}

}  // namespace
}  // namespace plv
