// Invariance properties of the parallel engine: configuration knobs that
// only change *data layout* or *transport* must not change the answer.
//
//   * hash function / table load factor — table layout only;
//   * aggregator capacity — chunking only;
//   * partition kind (cyclic vs block) — ownership only: every global
//     decision (gain histogram, cutoff, tie breaks) is rank-independent;
//   * monolithic vs streamed ingestion — input routing only.
//
// These pin down the determinism contract of DESIGN.md (decision 5).
//
// Caveat on floating point: the tests use unit-weight graphs, where every
// Σtot/w_uc accumulation is an exact integer sum, so reorderings (which
// transport and layout knobs do cause) cannot perturb gains. For graphs
// with irrational weight mixes, per-vertex gains are still exact functions
// of the table *contents*, but the global Q reduction's partial-sum
// grouping varies with the rank count, so stopping decisions within
// ~1e-12 of the tolerance could in principle flip.
#include <gtest/gtest.h>

#include "common/louvain.hpp"
#include "core/options.hpp"
#include "gen/lfr.hpp"
#include "gen/rmat.hpp"

namespace plv::core {
namespace {

graph::EdgeList test_graph() {
  return gen::lfr({.n = 1200, .mu = 0.35, .seed = 91}).edges;
}

Result run(const graph::EdgeList& edges, const ParOptions& opts) {
  return plv::louvain(GraphSource::from_edges(edges, 1200), opts);
}

TEST(Invariance, HashFunctionDoesNotChangeResult) {
  const auto edges = test_graph();
  ParOptions base;
  base.nranks = 4;
  const auto reference = run(edges, base);
  for (auto kind : {hashing::HashKind::kLinearCongruential, hashing::HashKind::kBitwise,
                    hashing::HashKind::kConcatenated}) {
    ParOptions opts = base;
    opts.hash = kind;
    const auto r = run(edges, opts);
    EXPECT_EQ(r.final_labels, reference.final_labels)
        << hashing::hash_kind_name(kind);
    EXPECT_DOUBLE_EQ(r.final_modularity, reference.final_modularity);
  }
}

TEST(Invariance, LoadFactorDoesNotChangeResult) {
  const auto edges = test_graph();
  ParOptions base;
  base.nranks = 4;
  const auto reference = run(edges, base);
  for (double load : {0.9, 0.5, 0.125}) {
    ParOptions opts = base;
    opts.table_max_load = load;
    const auto r = run(edges, opts);
    EXPECT_EQ(r.final_labels, reference.final_labels) << "load " << load;
  }
}

TEST(Invariance, AggregatorCapacityDoesNotChangeResult) {
  const auto edges = test_graph();
  ParOptions base;
  base.nranks = 4;
  const auto reference = run(edges, base);
  for (std::size_t cap : {0ul /* auto */, 1ul, 7ul, 100000ul}) {
    ParOptions opts = base;
    opts.aggregator_capacity = cap;
    const auto r = run(edges, opts);
    EXPECT_EQ(r.final_labels, reference.final_labels) << "capacity " << cap;
  }
}

TEST(Invariance, PartitionKindDoesNotChangeResult) {
  const auto edges = test_graph();
  ParOptions cyc;
  cyc.nranks = 4;
  ParOptions blk = cyc;
  blk.partition = graph::PartitionKind::kBlock;
  const auto a = run(edges, cyc);
  const auto b = run(edges, blk);
  EXPECT_EQ(a.final_labels, b.final_labels);
  EXPECT_DOUBLE_EQ(a.final_modularity, b.final_modularity);
}

TEST(Invariance, RankCountDoesNotChangeResult) {
  // Stronger than quality parity: the algorithm's global decisions are a
  // pure function of the input, so even the rank count must not matter.
  const auto edges = test_graph();
  ParOptions base;
  base.nranks = 1;
  const auto reference = run(edges, base);
  for (int nranks : {2, 3, 5, 8}) {
    ParOptions opts = base;
    opts.nranks = nranks;
    const auto r = run(edges, opts);
    EXPECT_EQ(r.final_labels, reference.final_labels) << "nranks " << nranks;
    EXPECT_DOUBLE_EQ(r.final_modularity, reference.final_modularity);
  }
}

TEST(Invariance, EdgeListOrderDoesNotChangeResult) {
  auto edges = test_graph();
  ParOptions opts;
  opts.nranks = 4;
  const auto reference = run(edges, opts);
  // Reverse the record order: In_Table contents are identical.
  std::reverse(edges.edges().begin(), edges.edges().end());
  const auto r = run(edges, opts);
  EXPECT_EQ(r.final_labels, reference.final_labels);
}

TEST(Invariance, RmatSkewDoesNotBreakAnyCombination) {
  // Cross product over a skewed graph: everything must agree pairwise.
  gen::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 92;
  const auto edges = gen::rmat(p);
  std::vector<std::vector<vid_t>> results;
  for (auto part : {graph::PartitionKind::kCyclic, graph::PartitionKind::kBlock}) {
    for (int nranks : {1, 4}) {
      ParOptions opts;
      opts.nranks = nranks;
      opts.partition = part;
      results.push_back(
          plv::louvain(GraphSource::from_edges(edges, 1u << p.scale), opts).final_labels);
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "combination " << i;
  }
}

}  // namespace
}  // namespace plv::core
