#include "metrics/modularity.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/er.hpp"
#include "gen/planted.hpp"
#include "graph/csr.hpp"

namespace plv::metrics {
namespace {

graph::Csr two_cliques_bridge() {
  // Two triangles joined by one edge: the classic two-community graph.
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  e.add(3, 4);
  e.add(4, 5);
  e.add(3, 5);
  e.add(2, 3);
  return graph::Csr::from_edges(e);
}

TEST(Modularity, SingleCommunityIsZero) {
  const auto g = two_cliques_bridge();
  const std::vector<vid_t> all_one(6, 0);
  EXPECT_NEAR(modularity(g, all_one), 0.0, 1e-12);
}

TEST(Modularity, KnownTwoTriangleValue) {
  const auto g = two_cliques_bridge();
  const std::vector<vid_t> split = {0, 0, 0, 1, 1, 1};
  // m=7; Σin per triangle (ordered) = 6; Σtot per side = 7.
  // Q = 2*(6/14 − (7/14)²) = 2*(3/7 − 1/4) = 5/14.
  EXPECT_NEAR(modularity(g, split), 5.0 / 14.0, 1e-12);
}

TEST(Modularity, SingletonsOfRegularGraphMatchFormula) {
  // Ring of n vertices: every singleton has Σin=0, Σtot=2 ⇒
  // Q = −n·(2/2m)² with m=n ⇒ −1/n.
  graph::EdgeList e;
  constexpr vid_t n = 12;
  for (vid_t v = 0; v < n; ++v) e.add(v, (v + 1) % n);
  const auto g = graph::Csr::from_edges(e);
  std::vector<vid_t> singletons(n);
  std::iota(singletons.begin(), singletons.end(), vid_t{0});
  EXPECT_NEAR(modularity(g, singletons), -1.0 / n, 1e-12);
}

TEST(Modularity, IsAtMostOneAndAboveMinusHalf) {
  const auto graph = gen::planted_partition(
      {.communities = 6, .community_size = 20, .p_intra = 0.6, .p_inter = 0.05, .seed = 2});
  const auto g = graph::Csr::from_edges(graph.edges, 120);
  for (std::uint64_t variant = 0; variant < 5; ++variant) {
    std::vector<vid_t> labels(120);
    for (vid_t v = 0; v < 120; ++v) labels[v] = (v * (variant + 1)) % 7;
    const double q = modularity(g, labels);
    EXPECT_LE(q, 1.0);
    EXPECT_GE(q, -0.5 - 1e-9);
  }
}

TEST(Modularity, SelfLoopsCountAsInternal) {
  graph::EdgeList e;
  e.add(0, 0, 5.0);
  e.add(0, 1, 1.0);
  const auto g = graph::Csr::from_edges(e);
  // Everything in one community: Q = 0 still (Σin = 2m).
  EXPECT_NEAR(modularity(g, {0, 0}), 0.0, 1e-12);
  // Split: community {0} has Σin = 10 (A(0,0)), Σtot = 11; {1}: 0 and 1.
  // 2m = 12. Q = 10/12 − (11/12)² + 0 − (1/12)².
  const double expected = 10.0 / 12 - (11.0 / 12) * (11.0 / 12) - (1.0 / 12) * (1.0 / 12);
  EXPECT_NEAR(modularity(g, {0, 1}), expected, 1e-12);
}

TEST(Modularity, EmptyGraphIsZero) {
  const graph::Csr g;
  EXPECT_DOUBLE_EQ(modularity(g, {}), 0.0);
}

TEST(CommunityWeightsTest, MatchesDirectSums) {
  const auto g = two_cliques_bridge();
  const std::vector<vid_t> split = {0, 0, 0, 1, 1, 1};
  const CommunityWeights w = community_weights(g, split);
  ASSERT_EQ(w.sigma_in.size(), 2u);
  EXPECT_DOUBLE_EQ(w.sigma_in[0], 6.0);   // ordered pairs inside triangle
  EXPECT_DOUBLE_EQ(w.sigma_in[1], 6.0);
  EXPECT_DOUBLE_EQ(w.sigma_tot[0], 7.0);  // 2+2+3
  EXPECT_DOUBLE_EQ(w.sigma_tot[1], 7.0);
}

TEST(CommunityWeightsTest, SigmaTotSumsToTwoM) {
  const auto edges = gen::erdos_renyi({.n = 300, .m = 1500, .seed = 4});
  const auto g = graph::Csr::from_edges(edges, 300);
  std::vector<vid_t> labels(300);
  for (vid_t v = 0; v < 300; ++v) labels[v] = v % 17;
  const CommunityWeights w = community_weights(g, labels);
  const double tot = std::accumulate(w.sigma_tot.begin(), w.sigma_tot.end(), 0.0);
  EXPECT_NEAR(tot, g.two_m(), 1e-9);
}

TEST(DeltaQ, MatchesDirectModularityDifference) {
  // Property: delta_q_join computed from local quantities must equal the
  // difference of full modularity evaluations.
  const auto graph = gen::planted_partition(
      {.communities = 4, .community_size = 10, .p_intra = 0.7, .p_inter = 0.05, .seed = 9});
  const auto g = graph::Csr::from_edges(graph.edges, 40);
  // Partition: ground truth, but with vertex 0 isolated in its own label.
  std::vector<vid_t> labels = graph.ground_truth;
  for (auto& c : labels) c += 1;  // shift so label 0 is free
  labels[0] = 0;

  const double q_before = modularity(g, labels);
  // Move vertex 0 into community labels[1].
  const vid_t target = labels[1];
  weight_t w_to = 0;
  g.for_each_neighbor(0, [&](vid_t v, weight_t a) {
    if (v != 0 && labels[v] == target) w_to += a;
  });
  const CommunityWeights w = community_weights(g, labels);
  const double predicted = delta_q_join(w_to, w.sigma_tot[target], g.strength(0), g.two_m());

  std::vector<vid_t> moved = labels;
  moved[0] = target;
  const double q_after = modularity(g, moved);
  EXPECT_NEAR(q_after - q_before, predicted, 1e-12);
}

TEST(DeltaQ, ZeroForZeroTwoM) {
  EXPECT_DOUBLE_EQ(delta_q_join(1.0, 1.0, 1.0, 0.0), 0.0);
}

}  // namespace
}  // namespace plv::metrics
