#include "core/louvain_par.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/lfr.hpp"
#include "gen/planted.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"
#include "metrics/similarity.hpp"

namespace plv::core {
namespace {

ParOptions opts_with(int nranks) {
  ParOptions o;
  o.nranks = nranks;
  return o;
}

class ParLouvainRanks : public ::testing::TestWithParam<int> {};

TEST_P(ParLouvainRanks, RecoversRingOfCliques) {
  const auto graph = gen::ring_of_cliques(8, 5);
  const ParResult r = plv::louvain(GraphSource::from_edges(graph.edges, 40), opts_with(GetParam()));
  EXPECT_GT(metrics::nmi(r.final_labels, graph.ground_truth), 0.95);
  EXPECT_GT(r.final_modularity, 0.6);
}

TEST_P(ParLouvainRanks, ReportedModularityMatchesRecomputation) {
  const auto graph = gen::lfr({.n = 1000, .mu = 0.3, .seed = 21});
  const ParResult r = plv::louvain(GraphSource::from_edges(graph.edges, 1000), opts_with(GetParam()));
  const auto g = graph::Csr::from_edges(graph.edges, 1000);
  EXPECT_NEAR(r.final_modularity, metrics::modularity(g, r.final_labels), 1e-9);
}

TEST_P(ParLouvainRanks, ResultIndependentOfRankCount) {
  // Determinism within a rank count is bit-exact; across rank counts the
  // partitions must agree in quality (NMI vs ground truth close).
  const auto graph = gen::planted_partition(
      {.communities = 8, .community_size = 16, .p_intra = 0.7, .p_inter = 0.02, .seed = 22});
  const ParResult r = plv::louvain(GraphSource::from_edges(graph.edges, 128), opts_with(GetParam()));
  EXPECT_GT(metrics::nmi(r.final_labels, graph.ground_truth), 0.9);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParLouvainRanks, ::testing::Values(1, 2, 4, 7),
                         [](const auto& info) {
                           return "nranks" + std::to_string(info.param);
                         });

TEST(ParLouvain, DeterministicAcrossRuns) {
  const auto graph = gen::lfr({.n = 800, .mu = 0.3, .seed = 23});
  const ParResult a = plv::louvain(GraphSource::from_edges(graph.edges, 800), opts_with(4));
  const ParResult b = plv::louvain(GraphSource::from_edges(graph.edges, 800), opts_with(4));
  EXPECT_EQ(a.final_labels, b.final_labels);
  EXPECT_DOUBLE_EQ(a.final_modularity, b.final_modularity);
  EXPECT_EQ(a.num_levels(), b.num_levels());
}

TEST(ParLouvain, LevelLabelChainsComposeToFinal) {
  const auto graph = gen::lfr({.n = 600, .mu = 0.3, .seed = 24});
  const ParResult r = plv::louvain(GraphSource::from_edges(graph.edges, 600), opts_with(3));
  ASSERT_GE(r.num_levels(), 1u);
  EXPECT_EQ(r.labels_at_level(r.num_levels() - 1), r.final_labels);
}

TEST(ParLouvain, LevelSizesChain) {
  const auto graph = gen::lfr({.n = 1200, .mu = 0.4, .seed = 25});
  const ParResult r = plv::louvain(GraphSource::from_edges(graph.edges, 1200), opts_with(4));
  for (std::size_t l = 1; l < r.levels.size(); ++l) {
    EXPECT_EQ(r.levels[l].num_vertices, r.levels[l - 1].num_communities);
  }
  for (const auto& level : r.levels) {
    EXPECT_EQ(level.labels.size(), level.num_vertices);
    for (vid_t c : level.labels) EXPECT_LT(c, level.num_communities);
  }
}

TEST(ParLouvain, BlockPartitionAgreesWithCyclic) {
  const auto graph = gen::planted_partition(
      {.communities = 6, .community_size = 20, .p_intra = 0.7, .p_inter = 0.02, .seed = 26});
  ParOptions cyc = opts_with(4);
  ParOptions blk = opts_with(4);
  blk.partition = graph::PartitionKind::kBlock;
  const ParResult a = plv::louvain(GraphSource::from_edges(graph.edges, 120), cyc);
  const ParResult b = plv::louvain(GraphSource::from_edges(graph.edges, 120), blk);
  EXPECT_GT(metrics::nmi(a.final_labels, b.final_labels), 0.9);
}

TEST(ParLouvain, NaiveVariantConvergesSlowerOrWorse) {
  // Fig. 4's point: without the heuristic the chaotic motion hurts
  // modularity per outer round. We check the heuristic never loses.
  const auto graph = gen::lfr({.n = 1500, .mu = 0.4, .seed = 27});
  ParOptions with = opts_with(4);
  ParOptions without = opts_with(4);
  without.threshold = ThresholdModel::kNone;
  const ParResult a = plv::louvain(GraphSource::from_edges(graph.edges, 1500), with);
  const ParResult b = plv::louvain(GraphSource::from_edges(graph.edges, 1500), without);
  EXPECT_GE(a.final_modularity, b.final_modularity - 0.05);
}

TEST(ParLouvain, SelfLoopsAndParallelEdgesHandled) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(0, 1);  // parallel edge
  e.add(1, 2);
  e.add(2, 2, 2.0);  // self loop
  e.add(3, 4);
  const ParResult r = plv::louvain(GraphSource::from_edges(e, 5), opts_with(2));
  const auto g = graph::Csr::from_edges(e, 5);
  EXPECT_NEAR(r.final_modularity, metrics::modularity(g, r.final_labels), 1e-9);
}

TEST(ParLouvain, IsolatedVerticesSurviveAsSingletons) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  const ParResult r = plv::louvain(GraphSource::from_edges(e, 6), opts_with(3));
  ASSERT_EQ(r.final_labels.size(), 6u);
  EXPECT_NE(r.final_labels[4], r.final_labels[5]);
  EXPECT_EQ(r.final_labels[0], r.final_labels[2]);
}

TEST(ParLouvain, EdgelessGraphYieldsSingletonsAndZeroQ) {
  // n vertices, no edges: Eq. 3 is undefined (m = 0); the engine must
  // return singleton communities and Q = 0 rather than NaN.
  const ParResult r = plv::louvain(GraphSource::from_edges(graph::EdgeList{}, 0), opts_with(2));
  (void)r;
  graph::EdgeList no_edges;
  ParOptions opts = opts_with(3);
  const ParResult res = plv::louvain(GraphSource::from_edges(no_edges, 0), opts);
  EXPECT_TRUE(res.final_labels.empty());

  // Explicit vertex count with zero edges.
  ParResult res5;
  {
    graph::EdgeList e;  // empty
    res5 = plv::louvain(GraphSource::from_edges(e, 5), opts);
  }
  ASSERT_EQ(res5.final_labels.size(), 5u);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(res5.final_labels[v], v);
  EXPECT_DOUBLE_EQ(res5.final_modularity, 0.0);
  EXPECT_FALSE(std::isnan(res5.final_modularity));
}

TEST(ParLouvain, EmptyGraphReturnsEmptyResult) {
  const ParResult r = plv::louvain(GraphSource::from_edges(graph::EdgeList{}, 0), opts_with(2));
  EXPECT_TRUE(r.final_labels.empty());
  EXPECT_EQ(r.num_levels(), 0u);
}

TEST(ParLouvain, TrafficCountersArePopulated) {
  const auto graph = gen::lfr({.n = 500, .mu = 0.3, .seed = 28});
  const ParResult r = plv::louvain(GraphSource::from_edges(graph.edges, 500), opts_with(4));
  EXPECT_GT(r.traffic.records_sent, 0u);
  EXPECT_EQ(r.traffic.records_sent, r.traffic.records_received);
  EXPECT_GT(r.traffic.bytes_sent, 0u);
  EXPECT_EQ(r.rank_seconds.size(), 4u);
}

TEST(ParLouvain, PhaseTimersUseFig8Names) {
  const auto graph = gen::lfr({.n = 500, .mu = 0.3, .seed = 29});
  const ParResult r = plv::louvain(GraphSource::from_edges(graph.edges, 500), opts_with(2));
  EXPECT_GT(r.timers.get(phase::kStatePropagation), 0.0);
  EXPECT_GT(r.timers.get(phase::kFindBestCommunity), 0.0);
  EXPECT_GT(r.timers.get(phase::kRefine), 0.0);
  EXPECT_GT(r.timers.get(phase::kGraphReconstruction), 0.0);
}

TEST(ParLouvain, TraceRecordsEpsilonAndCutoff) {
  const auto graph = gen::lfr({.n = 600, .mu = 0.4, .seed = 30});
  const ParResult r = plv::louvain(GraphSource::from_edges(graph.edges, 600), opts_with(2));
  ASSERT_FALSE(r.levels.empty());
  const auto& trace = r.levels.front().trace;
  ASSERT_FALSE(trace.epsilon.empty());
  EXPECT_EQ(trace.epsilon.size(), trace.moved_fraction.size());
  EXPECT_EQ(trace.gain_cutoff.size(), trace.moved_fraction.size());
  for (double eps : trace.epsilon) {
    EXPECT_GE(eps, 0.0);
    EXPECT_LE(eps, 1.0);
  }
}

TEST(ParLouvain, WeightedGraphModularityConsistent) {
  graph::EdgeList e;
  e.add(0, 1, 10.0);
  e.add(1, 2, 10.0);
  e.add(0, 2, 10.0);
  e.add(3, 4, 10.0);
  e.add(4, 5, 10.0);
  e.add(3, 5, 10.0);
  e.add(2, 3, 0.1);  // weak bridge
  const ParResult r = plv::louvain(GraphSource::from_edges(e, 6), opts_with(2));
  EXPECT_EQ(r.final_labels[0], r.final_labels[1]);
  EXPECT_EQ(r.final_labels[3], r.final_labels[5]);
  EXPECT_NE(r.final_labels[0], r.final_labels[3]);
}

TEST(ThresholdModelTest, EpsilonShapes) {
  // Decay model decreases with iteration.
  double prev = 2.0;
  for (int iter = 1; iter <= 10; ++iter) {
    const double e = epsilon_of(ThresholdModel::kExponentialDecay, 1.4, 2.5, iter);
    EXPECT_LT(e, prev);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
    prev = e;
  }
  // kNone is always 1.
  EXPECT_DOUBLE_EQ(epsilon_of(ThresholdModel::kNone, 0.1, 0.1, 5), 1.0);
  // Eq. 7 with the library defaults: clamped, strictly decreasing, and
  // floored at p1 (the property that keeps refinement moving).
  prev = 2.0;
  for (int iter = 1; iter <= 30; ++iter) {
    const double e = epsilon_of(ThresholdModel::kPaperEq7, 0.03, 0.3, iter);
    EXPECT_GE(e, 0.03);
    EXPECT_LE(e, 1.0);
    EXPECT_LT(e, prev);
    prev = e;
  }
  // First iteration is nearly unthrottled, tail is a few percent.
  EXPECT_GT(epsilon_of(ThresholdModel::kPaperEq7, 0.03, 0.3, 1), 0.5);
  EXPECT_LT(epsilon_of(ThresholdModel::kPaperEq7, 0.03, 0.3, 10), 0.1);
}

}  // namespace
}  // namespace plv::core
