#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/rmat.hpp"
#include "common/power_law.hpp"
#include "common/random.hpp"
#include "graph/csr.hpp"

namespace plv::graph {
namespace {

TEST(GraphStats, SmallGraphCounts) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 2, 3.0);  // self loop
  const auto g = Csr::from_edges(e, 5);
  const GraphStats s = graph_stats(g);
  EXPECT_EQ(s.vertices, 5u);
  EXPECT_EQ(s.undirected_edges, 3u);
  EXPECT_EQ(s.isolated_vertices, 2u);
  EXPECT_EQ(s.self_loops, 1u);
  EXPECT_EQ(s.max_degree, 2u);  // vertex 2's row: {1, 2} (self loop is one entry)
  EXPECT_DOUBLE_EQ(s.total_weight, 5.0);
}

TEST(GraphStats, DegreeHistogramSumsToN) {
  gen::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 21;
  const auto g = Csr::from_edges(gen::rmat(p), 1u << 10);
  const auto hist = degree_histogram(g);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), 0ULL), 1ULL << 10);
}

TEST(GraphStats, PowerLawExponentRecoversPlantedGamma) {
  // Build a configuration-model-ish graph from an explicit power-law
  // degree sequence and check the MLE gets near the planted exponent.
  constexpr double kGamma = 2.5;
  PowerLawSampler sampler(4, 256, kGamma);
  Xoshiro256 rng(5);
  std::vector<vid_t> stubs;
  constexpr vid_t kN = 20000;
  for (vid_t v = 0; v < kN; ++v) {
    const auto d = sampler(rng);
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  if (stubs.size() % 2) stubs.pop_back();
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.next_below(i)]);
  }
  EdgeList e;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] != stubs[i + 1]) e.add(stubs[i], stubs[i + 1]);
  }
  const auto g = Csr::from_edges(e, kN);
  const double gamma_hat = degree_powerlaw_exponent(g, 4);
  EXPECT_NEAR(gamma_hat, kGamma, 0.4);
}

TEST(GraphStats, ExponentZeroWhenTooFewSamples) {
  EdgeList e;
  e.add(0, 1);
  const auto g = Csr::from_edges(e);
  EXPECT_DOUBLE_EQ(degree_powerlaw_exponent(g, 4), 0.0);
}

TEST(GraphStats, EmptyGraph) {
  const GraphStats s = graph_stats(Csr{});
  EXPECT_EQ(s.vertices, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
}

}  // namespace
}  // namespace plv::graph
