#include "core/bfs.hpp"

#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "gen/planted.hpp"
#include "gen/rmat.hpp"

namespace plv::core {
namespace {

ParOptions opts_with(int nranks) {
  ParOptions o;
  o.nranks = nranks;
  return o;
}

TEST(BfsSeq, PathGraphDepths) {
  graph::EdgeList e;
  for (vid_t v = 1; v < 8; ++v) e.add(v - 1, v);
  const auto r = bfs_seq(e, 8, 0);
  for (vid_t v = 0; v < 8; ++v) {
    EXPECT_EQ(r.depth[v], v);
    EXPECT_EQ(r.parent[v], v == 0 ? 0u : v - 1);
  }
  EXPECT_EQ(r.reached, 8u);
  EXPECT_EQ(r.rounds, 8);
}

TEST(BfsSeq, UnreachedVerticesMarkedInvalid) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(2, 3);
  const auto r = bfs_seq(e, 5, 0);
  EXPECT_EQ(r.reached, 2u);
  EXPECT_EQ(r.depth[2], kInvalidVid);
  EXPECT_EQ(r.parent[4], kInvalidVid);
}

TEST(BfsSeq, MinParentTieBreak) {
  // 1 and 2 both at depth 1 reach 3: parent must be 1.
  graph::EdgeList e;
  e.add(0, 2);
  e.add(0, 1);
  e.add(2, 3);
  e.add(1, 3);
  const auto r = bfs_seq(e, 4, 0);
  EXPECT_EQ(r.depth[3], 2u);
  EXPECT_EQ(r.parent[3], 1u);
}

class BfsPar : public ::testing::TestWithParam<int> {};

TEST_P(BfsPar, MatchesSequentialOnPath) {
  graph::EdgeList e;
  for (vid_t v = 1; v < 50; ++v) e.add(v - 1, v);
  const auto seq = bfs_seq(e, 50, 0);
  const auto par = bfs_parallel(e, 50, 0, opts_with(GetParam()));
  EXPECT_EQ(par.depth, seq.depth);
  EXPECT_EQ(par.parent, seq.parent);
  EXPECT_EQ(par.reached, seq.reached);
}

TEST_P(BfsPar, MatchesSequentialOnRmat) {
  gen::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 17;
  const auto edges = gen::rmat(p);
  for (vid_t root : {0u, 5u, 100u}) {
    const auto seq = bfs_seq(edges, 1u << 10, root);
    const auto par = bfs_parallel(edges, 1u << 10, root, opts_with(GetParam()));
    EXPECT_EQ(par.depth, seq.depth) << "root " << root;
    EXPECT_EQ(par.parent, seq.parent) << "root " << root;
    EXPECT_EQ(par.edges_traversed, seq.edges_traversed) << "root " << root;
  }
}

TEST_P(BfsPar, ParentsFormValidBfsTree) {
  const auto g = gen::planted_partition(
      {.communities = 4, .community_size = 30, .p_intra = 0.2, .p_inter = 0.05, .seed = 18});
  const auto r = bfs_parallel(g.edges, 120, 0, opts_with(GetParam()));
  for (vid_t v = 0; v < 120; ++v) {
    if (r.depth[v] == kInvalidVid || v == 0) continue;
    const vid_t p = r.parent[v];
    ASSERT_NE(p, kInvalidVid);
    EXPECT_EQ(r.depth[v], r.depth[p] + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, BfsPar, ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "nranks" + std::to_string(info.param);
                         });

TEST(BfsPar, InvalidRootReturnsEmpty) {
  graph::EdgeList e;
  e.add(0, 1);
  const auto r = bfs_parallel(e, 2, 7, opts_with(2));
  EXPECT_TRUE(r.parent.empty());
}

TEST(BfsPar, SelfLoopsIgnored) {
  graph::EdgeList e;
  e.add(0, 0, 2.0);
  e.add(0, 1);
  const auto r = bfs_parallel(e, 2, 0, opts_with(2));
  EXPECT_EQ(r.depth[1], 1u);
  EXPECT_EQ(r.reached, 2u);
}

}  // namespace
}  // namespace plv::core
