#!/usr/bin/env python3
"""Self-test suite for tools/lint/plv_lint.py (the `lint_selftest` ctest).

Each rule gets fixture snippets written into a throwaway repo-shaped tree:
a positive case (the violation fires), a negative case (clean code stays
clean), and an allow-marker case (the grandfather escape works). The
fixtures run through the regex engine always, and through the clang
engine too when libclang is importable — so CI (which installs
python3-clang) proves the AST grounding, while a bare container still
verifies the fallback everyone's local ctest uses.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import plv_lint  # noqa: E402

CINDEX = plv_lint.load_cindex()


def lint_tree(tree: dict[str, str], engine_name: str = "regex") -> list[str]:
    """Writes `tree` (relpath -> content) to a temp root, lints it with the
    chosen engine, and returns the violation lines."""
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td).resolve()
        for rel, content in tree.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(content, encoding="utf-8")
        if engine_name == "clang":
            engine = plv_lint.ClangEngine(CINDEX, root, strict=True)
        else:
            engine = plv_lint.RegexEngine()
        linter = plv_lint.Linter(root, engine)
        violations = list(linter.collect())
        if engine_name == "clang" and engine.parse_failures:
            raise AssertionError(f"fixture failed to parse: {engine.parse_failures}")
        return violations


def rules_of(violations: list[str]) -> list[str]:
    return [v.split("[", 1)[1].split("]", 1)[0] for v in violations if "[" in v]


class BlankingTest(unittest.TestCase):
    def test_preserves_offsets_and_newlines(self):
        src = 'int a; // std::map\n/* std::mutex */ int b;\nconst char* s = "std::map";\n'
        blanked = plv_lint.blank_comments_and_strings(src)
        self.assertEqual(len(blanked), len(src))
        self.assertEqual(blanked.count("\n"), src.count("\n"))
        self.assertNotIn("std::map", blanked)
        self.assertNotIn("std::mutex", blanked)
        self.assertIn("int a;", blanked)
        self.assertIn("int b;", blanked)

    def test_comments_do_not_trip_rules(self):
        tree = {"src/pml/doc.cpp": "// discussing std::map and std::mutex here\n"
                                   "/* delete chunk; a.load(); */\n"
                                   'const char* s = "std::condition_variable";\n'}
        self.assertEqual(lint_tree(tree), [])


class EngineMixin:
    """Rule cases shared by both engines; subclasses pin `engine`."""

    engine = "regex"

    def lint(self, tree):
        return lint_tree(tree, self.engine)

    # -- map-ban ----------------------------------------------------------

    def test_map_ban_fires_in_hot_dirs(self):
        tree = {"src/core/bad.cpp": "#include <map>\nstd::map<int, int> m;\n"}
        self.assertEqual(rules_of(self.lint(tree)), ["map-ban", "map-ban"])

    def test_map_ban_ignores_cold_dirs(self):
        tree = {"src/graph/ok.cpp": "#include <map>\nstd::map<int, int> m;\n"}
        self.assertNotIn("map-ban", rules_of(self.lint(tree)))

    def test_map_ban_allow_marker(self):
        tree = {"src/core/ok.cpp":
                "#include <map>  // plv-lint: allow(map-ban)\n"}
        self.assertEqual(self.lint(tree), [])

    # -- raw-chunk-release ------------------------------------------------

    CHUNK_STUB = "struct Chunk { void recycle(); };\n"

    def test_raw_delete_of_chunk_fires(self):
        tree = {"src/pml/bad.cpp":
                self.CHUNK_STUB + "void f(Chunk* chunk) { delete chunk; }\n"}
        self.assertIn("raw-chunk-release", rules_of(self.lint(tree)))

    def test_recycle_call_fires(self):
        tree = {"src/pml/bad.cpp":
                self.CHUNK_STUB + "void f(Chunk* c) { c->recycle(); }\n"}
        self.assertIn("raw-chunk-release", rules_of(self.lint(tree)))

    def test_mailbox_is_exempt(self):
        tree = {"src/pml/mailbox.hpp":
                self.CHUNK_STUB + "inline void f(Chunk* c) { delete c; }\n"}
        self.assertEqual(self.lint(tree), [])

    # -- aggregator-final-drain -------------------------------------------

    AGG_STUB = ("struct Agg { void flush_all(); void flush_all_final(); };\n"
                "struct Comm { void drain_streaming_finalized(); };\n")

    def test_plain_flush_before_final_drain_fires(self):
        tree = {"tests/bad.cpp": self.AGG_STUB +
                "void f(Agg& a, Comm& c) {\n"
                "  a.flush_all();\n"
                "  c.drain_streaming_finalized();\n"
                "}\n"}
        self.assertEqual(rules_of(self.lint(tree)), ["aggregator-final-drain"])

    def test_final_flush_pairing_is_clean(self):
        tree = {"tests/ok.cpp": self.AGG_STUB +
                "void f(Agg& a, Comm& c) {\n"
                "  a.flush_all_final();\n"
                "  c.drain_streaming_finalized();\n"
                "}\n"}
        self.assertEqual(self.lint(tree), [])

    def test_drain_without_any_flush_is_clean(self):
        tree = {"tests/ok.cpp": self.AGG_STUB +
                "void f(Comm& c) { c.drain_streaming_finalized(); }\n"}
        self.assertEqual(self.lint(tree), [])

    # -- leader-collective-pairing ----------------------------------------

    # The stub lives in its own header so the regex engine's guard window
    # doesn't mistake the is_leader *declaration* for a guard.
    LEADER_STUB = ("struct T { bool is_leader(); void leader_alltoallv();\n"
                   "           void group_alltoallv(); };\n")
    LEADER_INC = '#include "leader_stub.hpp"\n'

    def leader_tree(self, body: str) -> dict[str, str]:
        return {"src/pml/leader_stub.hpp": self.LEADER_STUB,
                "src/pml/case.cpp": self.LEADER_INC + body}

    def test_unguarded_leader_call_fires(self):
        tree = self.leader_tree(
            "void f(T& t) {\n  t.leader_alltoallv();\n  t.group_alltoallv();\n}\n")
        self.assertEqual(rules_of(self.lint(tree)), ["leader-collective-pairing"])

    def test_guarded_and_paired_is_clean(self):
        tree = self.leader_tree(
            "void f(T& t) {\n"
            "  if (t.is_leader()) {\n    t.leader_alltoallv();\n  }\n"
            "  t.group_alltoallv();\n"
            "}\n")
        self.assertEqual(self.lint(tree), [])

    def test_missing_group_pairing_fires(self):
        tree = self.leader_tree(
            "void f(T& t) {\n"
            "  if (t.is_leader()) {\n    t.leader_alltoallv();\n  }\n"
            "}\n")
        self.assertEqual(rules_of(self.lint(tree)), ["leader-collective-pairing"])

    def test_leader_allow_marker(self):
        tree = self.leader_tree(
            "void f(T& t) {\n"
            "  // plv-lint: allow(leader-collective-pairing)\n"
            "  t.leader_alltoallv();\n"
            "}\n")
        self.assertEqual(self.lint(tree), [])

    # -- refine-full-scan -------------------------------------------------

    def test_full_scan_in_refine_tu_fires(self):
        tree = {"src/core/louvain_par.cpp":
                "using vid_t = unsigned;\n"
                "void f(vid_t local_n) {\n"
                "  for (vid_t v = 0; v < local_n; ++v) {}\n"
                "}\n"}
        self.assertEqual(rules_of(self.lint(tree)), ["refine-full-scan"])

    def test_full_scan_elsewhere_is_clean(self):
        tree = {"src/core/other.cpp":
                "using vid_t = unsigned;\n"
                "void f(vid_t local_n) {\n"
                "  for (vid_t v = 0; v < local_n; ++v) {}\n"
                "}\n"}
        self.assertEqual(self.lint(tree), [])

    def test_full_scan_allow_marker(self):
        tree = {"src/core/louvain_par.cpp":
                "using vid_t = unsigned;\n"
                "void f(vid_t local_n) {\n"
                "  // per-level setup: plv-lint: allow(refine-full-scan)\n"
                "  for (vid_t v = 0; v < local_n; ++v) {}\n"
                "}\n"}
        self.assertEqual(self.lint(tree), [])

    # -- rank-entry-ban ---------------------------------------------------

    RANK_STUB = "int louvain_rank(int);\n"

    def test_rank_entry_outside_tests_fires(self):
        # The declaration sits in tests/ (outside the rule's scope) so the
        # regex engine counts only the call, matching the AST engine.
        tree = {"tests/rank_stub.hpp": self.RANK_STUB,
                "bench/bad.cpp": '#include "../tests/rank_stub.hpp"\n'
                                 "int f() { return louvain_rank(0); }\n"}
        self.assertEqual(rules_of(self.lint(tree)), ["rank-entry-ban"])

    def test_rank_entry_in_tests_is_clean(self):
        tree = {"tests/ok.cpp": self.RANK_STUB +
                "int f() { return louvain_rank(0); }\n"}
        self.assertEqual(self.lint(tree), [])

    def test_rank_entry_definition_tu_is_exempt(self):
        tree = {"src/core/louvain_par.cpp": self.RANK_STUB +
                "int f() { return louvain_rank(0); }\n"}
        self.assertEqual(self.lint(tree), [])

    # -- raw-mutex-ban ----------------------------------------------------

    def test_raw_mutex_fires(self):
        tree = {"src/graph/bad.cpp": "#include <mutex>\nstd::mutex m;\n"}
        self.assertEqual(rules_of(self.lint(tree)), ["raw-mutex-ban"])

    def test_raw_condition_variable_fires(self):
        tree = {"tests/bad.cpp":
                "#include <condition_variable>\nstd::condition_variable cv;\n"}
        self.assertEqual(rules_of(self.lint(tree)), ["raw-mutex-ban"])

    def test_sync_hpp_is_exempt(self):
        tree = {"src/common/sync.hpp": "#include <mutex>\nstd::mutex m;\n"}
        self.assertEqual(self.lint(tree), [])

    def test_wrapper_usage_is_clean(self):
        tree = {"src/graph/ok.cpp":
                "namespace plv { class Mutex {}; }\nplv::Mutex m;\n"}
        self.assertEqual(self.lint(tree), [])

    def test_raw_mutex_allow_marker(self):
        tree = {"src/graph/ok.cpp":
                "#include <mutex>\n"
                "std::mutex m;  // plv-lint: allow(raw-mutex-ban)\n"}
        self.assertEqual(self.lint(tree), [])

    # -- explicit-memory-order --------------------------------------------

    ATOMIC_STUB = "#include <atomic>\nstd::atomic<int> a{0};\n"

    def test_bare_load_fires(self):
        tree = {"src/pml/bad.cpp": self.ATOMIC_STUB +
                "int f() { return a.load(); }\n"}
        self.assertEqual(rules_of(self.lint(tree)), ["explicit-memory-order"])

    def test_bare_store_fires(self):
        tree = {"src/core/bad.cpp": self.ATOMIC_STUB +
                "void f() { a.store(1); }\n"}
        self.assertEqual(rules_of(self.lint(tree)), ["explicit-memory-order"])

    def test_ordered_ops_are_clean(self):
        tree = {"src/pml/ok.cpp": self.ATOMIC_STUB +
                "int f() {\n"
                "  a.store(1, std::memory_order_release);\n"
                "  a.fetch_add(1, std::memory_order_seq_cst);\n"
                "  return a.load(std::memory_order_acquire);\n"
                "}\n"}
        self.assertEqual(self.lint(tree), [])

    def test_outside_concurrency_core_is_clean(self):
        tree = {"src/graph/ok.cpp": self.ATOMIC_STUB +
                "int f() { return a.load(); }\n"}
        self.assertEqual(self.lint(tree), [])

    def test_memory_order_allow_marker(self):
        tree = {"src/pml/ok.cpp": self.ATOMIC_STUB +
                "int f() { return a.load(); }  // plv-lint: allow(explicit-memory-order)\n"}
        self.assertEqual(self.lint(tree), [])


class RegexEngineTest(EngineMixin, unittest.TestCase):
    engine = "regex"


@unittest.skipUnless(CINDEX is not None, "libclang python bindings unavailable")
class ClangEngineTest(EngineMixin, unittest.TestCase):
    engine = "clang"

    # AST-only precision the regex fallback cannot express.

    def test_repo_local_map_type_is_clean(self):
        # A type merely *named* map must not trip the std::map ban.
        tree = {"src/core/ok.cpp":
                "namespace plv { template <class K, class V> class map {}; }\n"
                "plv::map<int, int> m;\n"}
        self.assertEqual(self.lint(tree), [])

    def test_atomic_increment_operator_fires(self):
        tree = {"src/pml/bad.cpp": self.ATOMIC_STUB + "void f() { a++; }\n"}
        self.assertEqual(rules_of(self.lint(tree)), ["explicit-memory-order"])

    def test_bare_exchange_fires(self):
        # The regex engine skips bare .exchange( (Comm::exchange collision);
        # the AST resolves the receiver and catches it.
        tree = {"src/pml/bad.cpp": self.ATOMIC_STUB +
                "int f() { return a.exchange(1); }\n"}
        self.assertEqual(rules_of(self.lint(tree)), ["explicit-memory-order"])

    def test_non_atomic_exchange_is_clean(self):
        tree = {"src/pml/ok.cpp":
                "struct Comm { int exchange(int); };\n"
                "int f(Comm& c) { return c.exchange(1); }\n"}
        self.assertEqual(self.lint(tree), [])

    def test_delete_of_non_chunk_is_clean(self):
        # Regex keys on chunk-ish names; the AST types the operand, so a
        # stray pointer named `c` of another type stays clean.
        tree = {"src/pml/ok.cpp":
                "struct Cfg {};\nvoid f(Cfg* other) { delete other; }\n"}
        self.assertEqual(self.lint(tree), [])

    def test_member_pointer_use_is_not_a_call(self):
        tree = {"src/pml/ok.cpp": self.LEADER_STUB +
                "auto g() { return &T::leader_alltoallv; }\n"}
        self.assertEqual(self.lint(tree), [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
