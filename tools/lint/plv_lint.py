#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

clang-tidy (driven by the .clang-tidy config at the repo root) covers the
generic C++ hygiene; this script enforces the invariants that are about
*this* codebase's architecture, not the language. Two engines implement
the same rules:

  * the **clang engine** (default where the `clang.cindex` libclang
    bindings import) grounds every rule in the AST: banned types are
    recognized by their resolved declaration (namespace std checked, not
    guessed), releases/calls by cursor kind (a CALL_EXPR is a call site;
    definitions, declarations, and member-pointer uses never match), and
    guards by position inside the *enclosing function*, not a line
    window;
  * the **regex engine** is the dependency-free fallback (comment- and
    string-blanked textual matching) so `ctest` works on machines without
    libclang. It is a slightly coarser over/under-approximation — noted
    per rule below — and CI runs the clang engine (`--engine=clang`).

The rules:

  map-ban
      std::map / std::unordered_map (and their multi* variants, and the
      <map> / <unordered_map> includes) are banned from the hot paths —
      src/core, src/pml, src/hashing. Their per-find pointer chase and
      allocation churn is exactly what the paper's flat open-addressed
      tables exist to avoid; common/flat_map.hpp is the sanctioned
      container (and lives outside the banned directories). AST mode
      resolves the template to namespace std, so a repo-local type merely
      *named* `map` never trips.

  raw-chunk-release
      Chunk nodes live and die on the pool API (Transport::acquire_chunk /
      release_chunk, ChunkPool::acquire / release). A raw `delete` of a
      chunk node, or a direct Chunk::recycle() call, bypasses the free
      list, the watermark accounting, and the ValidatingTransport
      ownership ledger. Only src/pml/mailbox.hpp — the pool and mailbox
      implementation itself — is exempt. AST mode types the delete's
      operand (any expression deleting a Chunk*, whatever the variable is
      called); the regex fallback keys on chunk-ish operand names.

  aggregator-final-drain
      Comm::drain_streaming_finalized sends no marker wave: it relies on
      the caller having ended the phase toward every destination already,
      which is exactly what Aggregator::flush_all_final does. Pairing it
      with plain flush_all() (whose phase end comes from the drain's own
      markers) deadlocks the phase — the nearest aggregator flush
      preceding every drain_streaming_finalized call site must be
      flush_all_final. Call sites are CALL_EXPR cursors in AST mode.

  leader-collective-pairing
      Transport::leader_alltoallv is the leaders-only inter-group plane of
      the hierarchical collectives: a non-leader that reaches it throws
      kLeaderOnlyCollective under validation, and a leader that calls it
      without the group_alltoallv up/down phases silently drops every
      non-leader's contribution. AST mode demands an is_leader reference
      *earlier in the enclosing function* of each leader_alltoallv
      CALL_EXPR plus a group_alltoallv call in the file; the regex
      fallback approximates the guard with a preceding-lines window.
      Definitions and member-pointer uses are not CALL_EXPRs and need no
      exemption; deliberate-violation tests carry allow markers.

  refine-full-scan
      The refine inner loops in src/core/louvain_par.cpp are frontier-
      driven: with active-vertex scheduling on, FIND must walk only the
      awake vertices, so a `for (vid_t l = 0; l < local_n; ...)` sweep in
      that translation unit is a full-partition scan in a hot path — the
      exact pattern the frontier exists to kill. AST mode applies the
      pattern to real FOR_STMT headers only. The handful of sanctioned
      sweeps carry `plv-lint: allow(refine-full-scan)` markers explaining
      why each is not a per-iteration full scan.

  rank-entry-ban
      core::louvain_rank is the per-rank engine body — a test seam for
      driving one rank inside a harness-owned fleet, not an entry point.
      Library, bench, and example code must go through the plv::louvain /
      GraphSource front door (or plv::Session for streaming), which own
      validation, fleet spawning, and result assembly. Calls are banned
      outside tests/; src/core/louvain_par.{cpp,hpp} (definition and
      declaration) are exempt.

  raw-mutex-ban
      Locks go through the annotated wrappers in src/common/sync.hpp
      (plv::Mutex / plv::CondVar / plv::MutexLock) so Clang Thread Safety
      Analysis sees every capability. Declaring std::mutex,
      std::condition_variable, or their timed/recursive/shared variants
      anywhere else — including via std::unique_lock<std::mutex> — is an
      error; only sync.hpp itself (the wrapper implementation) is exempt.
      AST mode checks the canonical type of every variable, field, and
      parameter declaration.

  explicit-memory-order
      Every std::atomic load/store/RMW in src/pml and src/core must name
      its std::memory_order: the lock-free mailbox's orderings are
      deliberate, reviewed decisions, and a bare `.load()` silently
      buying seq_cst hides the reasoning. AST mode also catches the
      operator forms (`++`, `+=`, assignment, implicit conversion reads)
      that cannot take an order argument — rewrite them as named calls.
      The regex fallback checks named calls only, and skips bare
      `.exchange(` (ambiguous with Comm::exchange) — the clang engine
      covers both precisely.

A genuine exception can be grandfathered with `plv-lint: allow(<rule>)`
in a comment on the offending line (or the line directly above it) — the
allow marker is read from the raw source, before any blanking.

Exit status: 0 when clean, 1 with one `path:line: [rule] message` per
violation, 2 when the requested engine is unusable (e.g. --engine=clang
without libclang, or a file fails to parse in strict clang mode). No
dependencies beyond the standard library; `clang.cindex` is used when
available or demanded.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

MAP_BAN_DIRS = ("src/core", "src/pml", "src/hashing")
CHUNK_DIRS = ("src/core", "src/pml", "src/hashing")
CHUNK_EXEMPT = ("src/pml/mailbox.hpp",)
# Aggregator/drain pairing is checked everywhere the API is used, tests
# and benches included — a deadlocking example is still a bug.
AGG_DIRS = ("src", "tests", "bench", "examples")
# louvain_rank is callable from tests only; the engine's own translation
# unit and header hold the definition/declaration.
RANK_ENTRY_DIRS = ("src", "bench", "examples")
RANK_ENTRY_EXEMPT = ("src/core/louvain_par.cpp", "src/core/louvain_par.hpp")
# Full-partition sweeps are banned only in the refine engine's own TU —
# that is where the frontier lives and where an unmarked `< local_n` loop
# means a hot path silently scanning every vertex per iteration.
REFINE_SCAN_FILES = ("src/core/louvain_par.cpp",)
# Raw lock primitives are banned repo-wide; the wrapper implementation is
# the single place allowed to touch the std types.
RAW_MUTEX_DIRS = ("src", "tests", "bench", "examples")
RAW_MUTEX_EXEMPT = ("src/common/sync.hpp",)
# Memory-order discipline covers the concurrency core, where the orders
# carry protocol meaning (mailbox wake-ups, barrier generations, abort
# flags), not the whole tree.
MEMORY_ORDER_DIRS = ("src/pml", "src/core")
# Trees of deliberate violations consumed by the static-contract ctests;
# the repo-root scan must not trip over them.
FIXTURE_DIRS = ("tests/static_contracts",)

CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

MAP_BAN_RE = re.compile(
    r"\bstd\s*::\s*(?:unordered_)?(?:multi)?map\b|#\s*include\s*<(?:unordered_)?map>"
)
# A raw delete of a chunk node. Chunk pointers in this codebase are
# consistently named c / chunk / *_chunk and declared as Chunk*; the rule
# fires on a `delete` whose line also involves a chunk-ish name so plain
# deletes of other types stay out of scope. (The clang engine types the
# operand instead and has no naming dependence.)
RAW_DELETE_RE = re.compile(r"\bdelete\b[^;]*\b(?:[Cc]hunk\w*|c)\s*;")
RECYCLE_RE = re.compile(r"(?:\.|->)\s*recycle\s*\(")
# Call sites only (object.method / ptr->method): definitions and
# declarations of these members in comm.hpp / aggregator.hpp don't match.
FINAL_DRAIN_CALL_RE = re.compile(r"(?:\.|->)\s*drain_streaming_finalized\s*[<(]")
FLUSH_CALL_RE = re.compile(r"(?:\.|->)\s*(flush_all(?:_final)?)\s*\(")
LEADER_CALL_RE = re.compile(r"(?:\.|->)\s*leader_alltoallv\s*\(")
GROUP_CALL_RE = re.compile(r"(?:\.|->)\s*group_alltoallv\s*\(")
IS_LEADER_RE = re.compile(r"\bis_leader\b")
RANK_ENTRY_RE = re.compile(r"\blouvain_rank\s*\(")
# A for loop whose bound is the local partition size: `for (vid_t l = 0;
# l < local_n; ...)` and spacing/name variants. The bound name is what
# makes it a full-partition sweep; the induction variable is free.
REFINE_SCAN_RE = re.compile(r"\bfor\s*\(\s*vid_t\s+\w+\s*=\s*0\s*;\s*\w+\s*<\s*local_n\b")
RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?)\b"
)
# Named atomic operations the regex engine can attribute safely. `.wait(`
# / `.clear(` collide with containers and condition variables, and bare
# `.exchange(` collides with Comm::exchange — the clang engine resolves
# those by receiver type instead.
ATOMIC_CALL_RE = re.compile(
    r"(?:\.|->)\s*(load|store|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"compare_exchange_weak|compare_exchange_strong|test_and_set)\s*(\()"
)
# How far above a leader_alltoallv call the is_leader guard may sit in
# the regex engine. The real call site (Comm::hier_alltoallv's cross
# phase) stages the leader blobs between the branch and the call, so the
# window is generous; it only needs to be smaller than the distance to an
# unrelated function. The clang engine uses the enclosing function
# instead of a window.
LEADER_GUARD_WINDOW = 80

ALLOW_RE = re.compile(r"plv-lint:\s*allow\(([\w,\s-]+)\)")

# Method names that are atomic operations when the receiver resolves to
# std::atomic (clang engine). Operators are violations outright: they
# cannot carry a memory_order argument.
ATOMIC_OP_NAMES = {
    "load", "store", "exchange", "compare_exchange_weak",
    "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "test_and_set", "clear", "wait",
}
ATOMIC_PARENTS = {
    "atomic", "__atomic_base", "__atomic_float", "atomic_flag",
    "__atomic_flag_base",
}

MESSAGES = {
    "map-ban": (
        "std::map/std::unordered_map in a hot path; use "
        "common/flat_map.hpp (plv::FlatMap) instead"
    ),
    "raw-chunk-release": (
        "chunk node released outside the pool API; use "
        "Transport::release_chunk / ChunkPool::release"
    ),
    "aggregator-final-drain": (
        "drain_streaming_finalized paired with flush_all(); the finalized "
        "drain sends no markers, so the aggregator must be flushed with "
        "flush_all_final()"
    ),
    "leader-guard": (
        "leader_alltoallv call without an is_leader guard above it; the "
        "inter-group plane is leaders-only (non-leaders throw "
        "kLeaderOnlyCollective under validation)"
    ),
    "leader-pairing": (
        "leader_alltoallv call without a group_alltoallv pairing in the "
        "file; a lone cross phase drops every non-leader's contribution "
        "(no up/down phases)"
    ),
    "refine-full-scan": (
        "full-partition vertex sweep in the refine engine; iterate the "
        "active frontier instead, or mark a sanctioned once-per-level "
        "sweep with plv-lint: allow(refine-full-scan)"
    ),
    "rank-entry-ban": (
        "direct louvain_rank call outside tests/; go through plv::louvain "
        "/ GraphSource (or plv::Session) — the front door owns "
        "validation, fleet spawning, and result assembly"
    ),
    "raw-mutex-ban": (
        "raw std lock primitive declared outside common/sync.hpp; use the "
        "annotated plv::Mutex / plv::CondVar / plv::MutexLock wrappers so "
        "thread-safety analysis sees the capability"
    ),
    "explicit-memory-order": (
        "std::atomic operation without an explicit std::memory_order; the "
        "concurrency core names every ordering deliberately (operator "
        "forms: rewrite as load/store/fetch_* with an order)"
    ),
}


def blank_comments_and_strings(text: str) -> str:
    """Replaces comment/string-literal contents with spaces, preserving
    offsets and newlines so line numbers keep matching the source."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if ch == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                mode = "str"
                out.append(ch)
                i += 1
                continue
            if ch == "'":
                mode = "chr"
                out.append(ch)
                i += 1
                continue
            out.append(ch)
        elif mode == "line":
            if ch == "\n":
                mode = "code"
                out.append(ch)
            else:
                out.append(" ")
        elif mode == "block":
            if ch == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(ch if ch == "\n" else " ")
        else:  # str | chr
            quote = '"' if mode == "str" else "'"
            if ch == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                mode = "code"
                out.append(ch)
            elif ch == "\n":  # unterminated (raw string etc.) — bail to code
                mode = "code"
                out.append(ch)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def allowed(raw_lines: list[str], line_no: int, rule: str) -> bool:
    """True when line `line_no` (1-based) or the line above carries a
    plv-lint: allow(<rule>) marker (call expressions span lines, so the
    marker may sit in a comment directly above the call)."""
    for idx in (line_no - 1, line_no - 2):
        if 0 <= idx < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[idx])
            if m and rule in {r.strip() for r in m.group(1).split(",")}:
                return True
    return False


def extract_call_args(code: str, open_paren: int) -> str:
    """Returns the text between the matching parens starting at
    code[open_paren] == '(' (empty on imbalance)."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1:i]
    return ""


class FileScope:
    """Which rules apply to one file, derived from its repo-relative path."""

    def __init__(self, rel: str):
        self.rel = rel
        self.map_ban = rel.startswith(MAP_BAN_DIRS)
        self.chunk = rel.startswith(CHUNK_DIRS) and rel not in CHUNK_EXEMPT
        self.agg = rel.startswith(AGG_DIRS)
        self.rank_entry = rel.startswith(RANK_ENTRY_DIRS) and rel not in RANK_ENTRY_EXEMPT
        self.refine_scan = rel in REFINE_SCAN_FILES
        self.raw_mutex = rel.startswith(RAW_MUTEX_DIRS) and rel not in RAW_MUTEX_EXEMPT
        self.memory_order = rel.startswith(MEMORY_ORDER_DIRS)

    def any(self) -> bool:
        return (self.map_ban or self.chunk or self.agg or self.rank_entry
                or self.refine_scan or self.raw_mutex or self.memory_order)


class RegexEngine:
    """Dependency-free textual engine over comment/string-blanked source."""

    name = "regex"

    def lint_file(self, path: pathlib.Path, scope: FileScope, report) -> None:
        raw = path.read_text(encoding="utf-8", errors="replace")
        code = blank_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        code_lines = code.splitlines()

        def hit(idx: int, rule: str, message_key: str | None = None) -> None:
            if not allowed(raw_lines, idx + 1, rule):
                report(path, idx + 1, rule, MESSAGES[message_key or rule])

        for idx, code_line in enumerate(code_lines):
            if scope.map_ban and MAP_BAN_RE.search(code_line):
                hit(idx, "map-ban")
            if scope.chunk and (RAW_DELETE_RE.search(code_line)
                                or RECYCLE_RE.search(code_line)):
                hit(idx, "raw-chunk-release")
            if scope.rank_entry and RANK_ENTRY_RE.search(code_line):
                hit(idx, "rank-entry-ban")
            if scope.refine_scan and REFINE_SCAN_RE.search(code_line):
                hit(idx, "refine-full-scan")
            if scope.raw_mutex and RAW_MUTEX_RE.search(code_line):
                hit(idx, "raw-mutex-ban")

        if scope.memory_order:
            for m in ATOMIC_CALL_RE.finditer(code):
                args = extract_call_args(code, m.start(2))
                if "memory_order" in args:
                    continue
                line_no = code.count("\n", 0, m.start()) + 1
                if not allowed(raw_lines, line_no, "explicit-memory-order"):
                    report(path, line_no, "explicit-memory-order",
                           MESSAGES["explicit-memory-order"])

        # aggregator-final-drain: nearest preceding flush call before every
        # drain_streaming_finalized call site must be flush_all_final.
        if scope.agg:
            for m in FINAL_DRAIN_CALL_RE.finditer(code):
                line_no = code.count("\n", 0, m.start()) + 1
                if allowed(raw_lines, line_no, "aggregator-final-drain"):
                    continue
                flushes = list(FLUSH_CALL_RE.finditer(code, 0, m.start()))
                if not flushes:
                    # A marker-free drain with no aggregator flush at all in
                    # the file: the caller must have finalized through
                    # send_filled_final / send_marker by hand — legal (the
                    # Comm internals do this), so only the mispairing with a
                    # non-final flush is an error.
                    continue
                if flushes[-1].group(1) != "flush_all_final":
                    report(path, line_no, "aggregator-final-drain",
                           MESSAGES["aggregator-final-drain"])

        # leader-collective-pairing: every leader_alltoallv call site needs
        # an is_leader guard above it and a group_alltoallv pairing in the
        # file (see module docstring).
        if scope.agg:
            has_group_call = GROUP_CALL_RE.search(code) is not None
            for m in LEADER_CALL_RE.finditer(code):
                line_no = code.count("\n", 0, m.start()) + 1
                if allowed(raw_lines, line_no, "leader-collective-pairing"):
                    continue
                window = "\n".join(
                    code_lines[max(0, line_no - 1 - LEADER_GUARD_WINDOW):line_no - 1])
                if not IS_LEADER_RE.search(window):
                    report(path, line_no, "leader-collective-pairing",
                           MESSAGES["leader-guard"])
                    continue
                if not has_group_call:
                    report(path, line_no, "leader-collective-pairing",
                           MESSAGES["leader-pairing"])


def load_cindex():
    """Imports clang.cindex and verifies libclang actually loads; returns
    the module or None. Tries the packaged default first, then common
    distro locations (python3-clang does not always pin the library)."""
    try:
        import clang.cindex as ci  # type: ignore[import-not-found]
    except ImportError:
        return None
    try:
        ci.Index.create()
        return ci
    except Exception:
        pass
    import glob
    candidates = sorted(
        glob.glob("/usr/lib/llvm-*/lib/libclang*.so*")
        + glob.glob("/usr/lib/*/libclang*.so*"),
        reverse=True)
    for lib in candidates:
        try:
            ci.Config.loaded = False
            ci.Config.set_library_file(lib)
            ci.Index.create()
            return ci
        except Exception:
            continue
    return None


class ClangEngine:
    """libclang cursor engine: rules grounded in the resolved AST."""

    name = "clang"

    def __init__(self, ci, root: pathlib.Path, strict: bool):
        self.ci = ci
        self.root = root
        self.strict = strict  # fatal parse diagnostics fail the run
        self.index = ci.Index.create()
        self.args = ["-x", "c++", "-std=c++20", f"-I{root / 'src'}"]
        self.fallback = RegexEngine()
        self.parse_failures: list[str] = []

    # -- helpers -----------------------------------------------------------

    def _in_std(self, cursor) -> bool:
        """True when the (referenced) declaration lives in namespace std
        (directly or in a nested inline/detail namespace under std)."""
        decl = cursor.referenced if cursor.referenced is not None else cursor
        parent = decl.semantic_parent
        ci = self.ci
        while parent is not None and parent.kind != ci.CursorKind.TRANSLATION_UNIT:
            if parent.kind == ci.CursorKind.NAMESPACE and parent.spelling == "std":
                return True
            parent = parent.semantic_parent
        return False

    @staticmethod
    def _type_names_any(type_spelling: str, names: tuple[str, ...]) -> bool:
        return any(re.search(rf"\bstd::{n}\b", type_spelling) for n in names)

    def _enclosing_function(self, stack):
        ci = self.ci
        fn_kinds = {ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                    ci.CursorKind.FUNCTION_TEMPLATE, ci.CursorKind.CONSTRUCTOR,
                    ci.CursorKind.DESTRUCTOR, ci.CursorKind.LAMBDA_EXPR}
        for c in reversed(stack):
            if c.kind in fn_kinds:
                return c
        return None

    def _subtree_has_is_leader_before(self, fn_cursor, offset: int) -> bool:
        ci = self.ci
        ref_kinds = {ci.CursorKind.CALL_EXPR, ci.CursorKind.MEMBER_REF_EXPR,
                     ci.CursorKind.DECL_REF_EXPR,
                     ci.CursorKind.OVERLOADED_DECL_REF}
        for c in fn_cursor.walk_preorder():
            if (c.kind in ref_kinds and c.spelling == "is_leader"
                    and c.location.offset < offset):
                return True
        return False

    # -- per-file lint -----------------------------------------------------

    def lint_file(self, path: pathlib.Path, scope: FileScope, report) -> None:
        ci = self.ci
        raw = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        try:
            tu = self.index.parse(
                str(path), args=self.args,
                options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        except ci.TranslationUnitLoadError:
            tu = None
        fatal = tu is None or any(
            d.severity >= ci.Diagnostic.Fatal for d in tu.diagnostics)
        if fatal:
            first = next((d.spelling for d in tu.diagnostics
                          if d.severity >= ci.Diagnostic.Fatal), "parse failed"
                         ) if tu is not None else "parse failed"
            self.parse_failures.append(f"{scope.rel}: {first}")
            if not self.strict:
                # Degrade to the textual rules for this file so local runs
                # stay useful on partial checkouts / exotic includes.
                print(f"plv-lint: note: {scope.rel}: libclang parse failed "
                      f"({first}); falling back to the regex engine for "
                      "this file", file=sys.stderr)
                self.fallback.lint_file(path, scope, report)
            return

        def hit(line_no: int, rule: str, message_key: str | None = None) -> None:
            if not allowed(raw_lines, line_no, rule):
                report(path, line_no, rule, MESSAGES[message_key or rule])

        this_file = str(path)

        def in_this_file(cursor) -> bool:
            loc = cursor.location
            return loc.file is not None and loc.file.name == this_file

        # Gathered during one walk; resolved after.
        drain_calls: list = []   # (offset, line)
        flush_calls: list = []   # (offset, spelling)
        leader_calls: list = []  # (offset, line, enclosing_fn)
        has_group_call = False

        call_like = {ci.CursorKind.CALL_EXPR}
        name_ref_kinds = {ci.CursorKind.CALL_EXPR, ci.CursorKind.MEMBER_REF_EXPR,
                          ci.CursorKind.OVERLOADED_DECL_REF}

        stack: list = []

        def walk(cursor) -> None:
            nonlocal has_group_call
            for child in cursor.get_children():
                if in_this_file(child):
                    visit(child)
                stack.append(child)
                walk(child)
                stack.pop()

        def visit(c) -> None:
            nonlocal has_group_call
            kind = c.kind
            line = c.location.line
            offset = c.location.offset

            if scope.map_ban:
                if kind == ci.CursorKind.INCLUSION_DIRECTIVE and c.spelling in (
                        "map", "unordered_map"):
                    hit(line, "map-ban")
                elif kind in (ci.CursorKind.TEMPLATE_REF, ci.CursorKind.TYPE_REF) \
                        and c.spelling in ("map", "multimap", "unordered_map",
                                           "unordered_multimap") \
                        and self._in_std(c):
                    hit(line, "map-ban")

            if scope.chunk:
                if kind == ci.CursorKind.CXX_DELETE_EXPR:
                    children = list(c.get_children())
                    if children:
                        pointee = children[0].type.get_canonical().get_pointee()
                        if re.search(r"\bChunk\b", pointee.spelling):
                            hit(line, "raw-chunk-release")
                elif kind == ci.CursorKind.CALL_EXPR and c.spelling == "recycle":
                    ref = c.referenced
                    parent = ref.semantic_parent.spelling if (
                        ref is not None and ref.semantic_parent is not None) else None
                    if parent in (None, "Chunk"):
                        hit(line, "raw-chunk-release")

            if scope.rank_entry and kind == ci.CursorKind.CALL_EXPR \
                    and c.spelling == "louvain_rank":
                hit(line, "rank-entry-ban")

            if scope.refine_scan and kind == ci.CursorKind.FOR_STMT:
                ext = c.extent
                header = raw[ext.start.offset:min(ext.start.offset + 300,
                                                  ext.end.offset)]
                if REFINE_SCAN_RE.search(blank_comments_and_strings(header)):
                    hit(line, "refine-full-scan")

            if scope.raw_mutex and kind in (ci.CursorKind.VAR_DECL,
                                            ci.CursorKind.FIELD_DECL,
                                            ci.CursorKind.PARM_DECL):
                canon = c.type.get_canonical().spelling
                if self._type_names_any(canon, (
                        "mutex", "timed_mutex", "recursive_mutex",
                        "recursive_timed_mutex", "shared_mutex",
                        "shared_timed_mutex", "condition_variable",
                        "condition_variable_any")):
                    hit(line, "raw-mutex-ban")

            if scope.memory_order and kind == ci.CursorKind.CALL_EXPR:
                ref = c.referenced
                if ref is not None and ref.kind == ci.CursorKind.CXX_METHOD:
                    parent = ref.semantic_parent
                    if parent is not None and parent.spelling in ATOMIC_PARENTS \
                            and self._in_std(ref):
                        name = ref.spelling
                        if name.startswith("operator"):
                            hit(line, "explicit-memory-order")
                        elif name in ATOMIC_OP_NAMES:
                            has_order = any(
                                "memory_order" in a.type.get_canonical().spelling
                                for a in c.get_arguments() if a is not None)
                            if not has_order:
                                hit(line, "explicit-memory-order")

            if scope.agg:
                if kind in name_ref_kinds and c.spelling == "drain_streaming_finalized":
                    if kind in call_like or not any(
                            d[0] == offset for d in drain_calls):
                        drain_calls.append((offset, line))
                if kind in name_ref_kinds and c.spelling in ("flush_all",
                                                             "flush_all_final"):
                    flush_calls.append((offset, c.spelling))
                if kind == ci.CursorKind.CALL_EXPR and c.spelling == "leader_alltoallv":
                    leader_calls.append((offset, line, self._enclosing_function(stack)))
                if kind == ci.CursorKind.CALL_EXPR and c.spelling == "group_alltoallv":
                    has_group_call = True

        walk(tu.cursor)

        if scope.agg:
            flush_calls.sort()
            seen_drains = set()
            for offset, line in sorted(drain_calls):
                if line in seen_drains:
                    continue
                seen_drains.add(line)
                if allowed(raw_lines, line, "aggregator-final-drain"):
                    continue
                preceding = [s for o, s in flush_calls if o < offset]
                if preceding and preceding[-1] != "flush_all_final":
                    report(path, line, "aggregator-final-drain",
                           MESSAGES["aggregator-final-drain"])
            for offset, line, fn in leader_calls:
                if allowed(raw_lines, line, "leader-collective-pairing"):
                    continue
                guarded = fn is not None and self._subtree_has_is_leader_before(
                    fn, offset)
                if not guarded:
                    report(path, line, "leader-collective-pairing",
                           MESSAGES["leader-guard"])
                    continue
                if not has_group_call:
                    report(path, line, "leader-collective-pairing",
                           MESSAGES["leader-pairing"])


class Linter:
    def __init__(self, root: pathlib.Path, engine):
        self.root = root
        self.engine = engine
        self.violations: list[str] = []

    def report(self, path: pathlib.Path, line_no: int, rule: str, message: str) -> None:
        rel = path.relative_to(self.root)
        self.violations.append(f"{rel}:{line_no}: [{rule}] {message}")

    def files_under(self, dirs: tuple[str, ...]):
        seen = set()
        for d in dirs:
            base = self.root / d
            if not base.is_dir():
                continue
            for p in sorted(base.rglob("*")):
                if p.suffix not in CPP_SUFFIXES or p in seen:
                    continue
                rel = p.relative_to(self.root).as_posix()
                # Deliberate-violation fixtures (the static-contract
                # harness points --root inside them instead).
                if any(rel.startswith(f + "/") for f in FIXTURE_DIRS):
                    continue
                seen.add(p)
                yield p

    def collect(self) -> list[str]:
        """Lints the tree and returns the violations without printing
        (the seam the self-test suite drives)."""
        self.scanned = 0
        all_dirs = tuple(sorted({*MAP_BAN_DIRS, *CHUNK_DIRS, *AGG_DIRS,
                                 *RANK_ENTRY_DIRS, *RAW_MUTEX_DIRS,
                                 *MEMORY_ORDER_DIRS}))
        for p in self.files_under(all_dirs):
            scope = FileScope(p.relative_to(self.root).as_posix())
            if not scope.any():
                continue
            self.scanned += 1
            self.engine.lint_file(p, scope, self.report)
        self.violations.sort()
        return self.violations

    def run(self) -> int:
        self.collect()
        for v in self.violations:
            print(v)
        strict_failures = getattr(self.engine, "parse_failures", [])
        if getattr(self.engine, "strict", False) and strict_failures:
            for f in strict_failures:
                print(f"plv-lint: parse failure: {f}", file=sys.stderr)
            print("plv-lint: clang engine could not parse the tree "
                  "(missing headers?); fix the include path or use "
                  "--engine=auto", file=sys.stderr)
            return 2
        if self.violations:
            print(f"plv-lint: {len(self.violations)} violation(s)", file=sys.stderr)
            return 1
        print(f"plv-lint: clean ({self.scanned} files, {self.engine.name} engine)")
        return 0


def make_engine(choice: str, root: pathlib.Path):
    """Resolves --engine. Returns (engine, error): error is a message when
    the demanded engine is unavailable."""
    if choice == "regex":
        return RegexEngine(), None
    ci = load_cindex()
    if ci is None:
        if choice == "clang":
            return None, ("the clang engine needs the libclang python "
                          "bindings (python3-clang) and a loadable "
                          "libclang.so")
        print("plv-lint: note: libclang unavailable; using the regex "
              "engine (install python3-clang for AST-grounded rules)",
              file=sys.stderr)
        return RegexEngine(), None
    return ClangEngine(ci, root, strict=(choice == "clang")), None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--engine", choices=("auto", "clang", "regex"), default="auto",
                    help="auto: clang when libclang imports, else regex; "
                         "clang: require libclang and fail on parse errors "
                         "(CI); regex: force the textual fallback")
    args = ap.parse_args()
    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent.parent)
    engine, err = make_engine(args.engine, root.resolve())
    if engine is None:
        print(f"plv-lint: error: {err}", file=sys.stderr)
        return 2
    return Linter(root.resolve(), engine).run()


if __name__ == "__main__":
    sys.exit(main())
