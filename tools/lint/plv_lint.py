#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

clang-tidy (driven by the .clang-tidy config at the repo root) covers the
generic C++ hygiene; this script enforces the invariants that are about
*this* codebase's architecture, not the language:

  map-ban
      std::map / std::unordered_map (and their multi* variants, and the
      <map> / <unordered_map> includes) are banned from the hot paths —
      src/core, src/pml, src/hashing. Their per-find pointer chase and
      allocation churn is exactly what the paper's flat open-addressed
      tables exist to avoid; common/flat_map.hpp is the sanctioned
      container (and lives outside the banned directories). The directory
      rules cover every transport backend as it lands — transport_proc.cpp,
      transport_tcp.cpp, and the shared transport_socket.hpp frame pump
      are all under src/pml.

  raw-chunk-release
      Chunk nodes live and die on the pool API (Transport::acquire_chunk /
      release_chunk, ChunkPool::acquire / release). A raw `delete` of a
      chunk node, or a direct Chunk::recycle() call, bypasses the free
      list, the watermark accounting, and the ValidatingTransport
      ownership ledger. Only src/pml/mailbox.hpp — the pool and mailbox
      implementation itself — is exempt.

  aggregator-final-drain
      Comm::drain_streaming_finalized sends no marker wave: it relies on
      the caller having ended the phase toward every destination already,
      which is exactly what Aggregator::flush_all_final does. Pairing it
      with plain flush_all() (whose phase end comes from the drain's own
      markers) deadlocks the phase — every call site of
      drain_streaming_finalized must be preceded by flush_all_final, not
      flush_all, as the nearest aggregator flush.

  leader-collective-pairing
      Transport::leader_alltoallv is the leaders-only inter-group plane of
      the hierarchical collectives: a non-leader that reaches it throws
      kLeaderOnlyCollective under validation, and a leader that calls it
      without the group_alltoallv up/down phases silently drops every
      non-leader's contribution. The textual check: each
      `.leader_alltoallv(` / `->leader_alltoallv(` call site must have an
      is_leader token within the preceding lines (the guard) and a
      group_alltoallv call somewhere in the same file (the pairing).
      Definitions and member-pointer uses (the transports implementing
      the seam, the checker's dispatch table) don't match the call-site
      pattern and need no exemption; deliberate-violation tests carry
      allow markers.

  refine-full-scan
      The refine inner loops in src/core/louvain_par.cpp are frontier-
      driven: with active-vertex scheduling on, FIND must walk only the
      awake vertices, so a `for (vid_t l = 0; l < local_n; ...)` sweep in
      that translation unit is a full-partition scan in a hot path — the
      exact pattern the frontier exists to kill. The handful of sanctioned
      sweeps (per-level setup that runs once, the sequential bitmap walk
      that IS the frontier iterator, the gain finalize of the fused scan)
      carry `plv-lint: allow(refine-full-scan)` markers explaining why
      each is not a per-iteration full scan; any new unmarked sweep must
      either iterate the frontier or justify itself with a marker.

  rank-entry-ban
      core::louvain_rank is the per-rank engine body — a test seam for
      driving one rank inside a harness-owned fleet, not an entry point.
      Library, bench, and example code must go through the plv::louvain /
      GraphSource front door (or plv::Session for streaming), which own
      validation, fleet spawning, and result assembly; a direct
      louvain_rank call skips all three. Calls are banned outside tests/;
      src/core/louvain_par.{cpp,hpp} (the definition and its declaration)
      are exempt.

Matching is textual but comment- and string-aware: // and /* */ comments
and string literals are blanked before the rules run, so prose mentioning
a banned name does not trip the lint. A genuine exception can be
grandfathered with `plv-lint: allow(<rule>)` in a comment on the same
line — the allow marker is read from the raw line, before blanking.

Exit status: 0 when clean, 1 with one `path:line: [rule] message` per
violation otherwise. No dependencies beyond the standard library.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

MAP_BAN_DIRS = ("src/core", "src/pml", "src/hashing")
CHUNK_DIRS = ("src/core", "src/pml", "src/hashing")
CHUNK_EXEMPT = ("src/pml/mailbox.hpp",)
# Aggregator/drain pairing is checked everywhere the API is used, tests
# and benches included — a deadlocking example is still a bug.
AGG_DIRS = ("src", "tests", "bench", "examples")
# louvain_rank is callable from tests only; the engine's own translation
# unit and header hold the definition/declaration.
RANK_ENTRY_DIRS = ("src", "bench", "examples")
RANK_ENTRY_EXEMPT = ("src/core/louvain_par.cpp", "src/core/louvain_par.hpp")
# Full-partition sweeps are banned only in the refine engine's own TU —
# that is where the frontier lives and where an unmarked `< local_n` loop
# means a hot path silently scanning every vertex per iteration.
REFINE_SCAN_FILES = ("src/core/louvain_par.cpp",)

CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

MAP_BAN_RE = re.compile(
    r"\bstd\s*::\s*(?:unordered_)?(?:multi)?map\b|#\s*include\s*<(?:unordered_)?map>"
)
# A raw delete of a chunk node. Chunk pointers in this codebase are
# consistently named c / chunk / *_chunk and declared as Chunk*; the rule
# fires on a `delete` whose line also involves a chunk-ish name so plain
# deletes of other types stay out of scope.
RAW_DELETE_RE = re.compile(r"\bdelete\b[^;]*\b(?:[Cc]hunk\w*|c)\s*;")
RECYCLE_RE = re.compile(r"(?:\.|->)\s*recycle\s*\(")
# Call sites only (object.method / ptr->method): definitions and
# declarations of these members in comm.hpp / aggregator.hpp don't match.
FINAL_DRAIN_CALL_RE = re.compile(r"(?:\.|->)\s*drain_streaming_finalized\s*[<(]")
FLUSH_CALL_RE = re.compile(r"(?:\.|->)\s*(flush_all(?:_final)?)\s*\(")
LEADER_CALL_RE = re.compile(r"(?:\.|->)\s*leader_alltoallv\s*\(")
GROUP_CALL_RE = re.compile(r"(?:\.|->)\s*group_alltoallv\s*\(")
IS_LEADER_RE = re.compile(r"\bis_leader\b")
RANK_ENTRY_RE = re.compile(r"\blouvain_rank\s*\(")
# A for loop whose bound is the local partition size: `for (vid_t l = 0;
# l < local_n; ...)` and spacing/name variants. The bound name is what
# makes it a full-partition sweep; the induction variable is free.
REFINE_SCAN_RE = re.compile(r"\bfor\s*\(\s*vid_t\s+\w+\s*=\s*0\s*;\s*\w+\s*<\s*local_n\b")
# How far above a leader_alltoallv call the is_leader guard may sit. The
# real call site (Comm::hier_alltoallv's cross phase) stages the leader
# blobs between the branch and the call, so the window is generous; it
# only needs to be smaller than the distance to an unrelated function.
LEADER_GUARD_WINDOW = 80

ALLOW_RE = re.compile(r"plv-lint:\s*allow\(([\w,\s-]+)\)")


def blank_comments_and_strings(text: str) -> str:
    """Replaces comment/string-literal contents with spaces, preserving
    offsets and newlines so line numbers keep matching the source."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if ch == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                mode = "str"
                out.append(ch)
                i += 1
                continue
            if ch == "'":
                mode = "chr"
                out.append(ch)
                i += 1
                continue
            out.append(ch)
        elif mode == "line":
            if ch == "\n":
                mode = "code"
                out.append(ch)
            else:
                out.append(" ")
        elif mode == "block":
            if ch == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(ch if ch == "\n" else " ")
        else:  # str | chr
            quote = '"' if mode == "str" else "'"
            if ch == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                mode = "code"
                out.append(ch)
            elif ch == "\n":  # unterminated (raw string etc.) — bail to code
                mode = "code"
                out.append(ch)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def allowed(raw_line: str, rule: str) -> bool:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return False
    rules = {r.strip() for r in m.group(1).split(",")}
    return rule in rules


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.violations: list[str] = []

    def report(self, path: pathlib.Path, line_no: int, rule: str, message: str) -> None:
        rel = path.relative_to(self.root)
        self.violations.append(f"{rel}:{line_no}: [{rule}] {message}")

    def files_under(self, dirs: tuple[str, ...]):
        seen = set()
        for d in dirs:
            base = self.root / d
            if not base.is_dir():
                continue
            for p in sorted(base.rglob("*")):
                if p.suffix in CPP_SUFFIXES and p not in seen:
                    seen.add(p)
                    yield p

    def lint_file(self, path: pathlib.Path) -> None:
        raw = path.read_text(encoding="utf-8", errors="replace")
        code = blank_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        code_lines = code.splitlines()
        rel = path.relative_to(self.root).as_posix()

        in_map_ban = rel.startswith(MAP_BAN_DIRS)
        in_chunk = rel.startswith(CHUNK_DIRS) and rel not in CHUNK_EXEMPT
        in_rank_entry = rel.startswith(RANK_ENTRY_DIRS) and rel not in RANK_ENTRY_EXEMPT
        in_refine_scan = rel in REFINE_SCAN_FILES

        for idx, code_line in enumerate(code_lines):
            raw_line = raw_lines[idx] if idx < len(raw_lines) else ""
            if in_map_ban and MAP_BAN_RE.search(code_line):
                if not allowed(raw_line, "map-ban"):
                    self.report(
                        path, idx + 1, "map-ban",
                        "std::map/std::unordered_map in a hot path; use "
                        "common/flat_map.hpp (plv::FlatMap) instead",
                    )
            if in_chunk and (RAW_DELETE_RE.search(code_line) or RECYCLE_RE.search(code_line)):
                if not allowed(raw_line, "raw-chunk-release"):
                    self.report(
                        path, idx + 1, "raw-chunk-release",
                        "chunk node released outside the pool API; use "
                        "Transport::release_chunk / ChunkPool::release",
                    )
            if in_rank_entry and RANK_ENTRY_RE.search(code_line):
                if not allowed(raw_line, "rank-entry-ban"):
                    self.report(
                        path, idx + 1, "rank-entry-ban",
                        "direct louvain_rank call outside tests/; go through "
                        "plv::louvain / GraphSource (or plv::Session) — the "
                        "front door owns validation, fleet spawning, and "
                        "result assembly",
                    )
            if in_refine_scan and REFINE_SCAN_RE.search(code_line):
                if not allowed(raw_line, "refine-full-scan"):
                    self.report(
                        path, idx + 1, "refine-full-scan",
                        "full-partition vertex sweep in the refine engine; "
                        "iterate the active frontier instead, or mark a "
                        "sanctioned once-per-level sweep with "
                        "plv-lint: allow(refine-full-scan)",
                    )

        # aggregator-final-drain: nearest preceding flush call before every
        # drain_streaming_finalized call site must be flush_all_final.
        if rel.startswith(AGG_DIRS):
            for m in FINAL_DRAIN_CALL_RE.finditer(code):
                line_no = code.count("\n", 0, m.start()) + 1
                raw_line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
                if allowed(raw_line, "aggregator-final-drain"):
                    continue
                flushes = [f for f in FLUSH_CALL_RE.finditer(code, 0, m.start())]
                if not flushes:
                    # A marker-free drain with no aggregator flush at all in
                    # the file: the caller must have finalized through
                    # send_filled_final / send_marker by hand — legal (the
                    # Comm internals do this), so only the mispairing with a
                    # non-final flush is an error.
                    continue
                if flushes[-1].group(1) != "flush_all_final":
                    self.report(
                        path, line_no, "aggregator-final-drain",
                        "drain_streaming_finalized paired with flush_all(); "
                        "the finalized drain sends no markers, so the "
                        "aggregator must be flushed with flush_all_final()",
                    )

        # leader-collective-pairing: every leader_alltoallv call site needs
        # an is_leader guard above it and a group_alltoallv pairing in the
        # file (see module docstring).
        if rel.startswith(AGG_DIRS):
            has_group_call = GROUP_CALL_RE.search(code) is not None
            for m in LEADER_CALL_RE.finditer(code):
                line_no = code.count("\n", 0, m.start()) + 1
                raw_line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
                # Call expressions span lines, so the allow marker may sit
                # on its own comment line directly above the call.
                prev_raw = raw_lines[line_no - 2] if line_no >= 2 else ""
                if (allowed(raw_line, "leader-collective-pairing")
                        or allowed(prev_raw, "leader-collective-pairing")):
                    continue
                window = "\n".join(
                    code_lines[max(0, line_no - 1 - LEADER_GUARD_WINDOW):line_no - 1])
                if not IS_LEADER_RE.search(window):
                    self.report(
                        path, line_no, "leader-collective-pairing",
                        "leader_alltoallv call without an is_leader guard "
                        "above it; the inter-group plane is leaders-only "
                        "(non-leaders throw kLeaderOnlyCollective under "
                        "validation)",
                    )
                    continue
                if not has_group_call:
                    self.report(
                        path, line_no, "leader-collective-pairing",
                        "leader_alltoallv call without a group_alltoallv "
                        "pairing in the file; a lone cross phase drops every "
                        "non-leader's contribution (no up/down phases)",
                    )

    def run(self) -> int:
        scanned = set()
        for p in self.files_under(tuple({*MAP_BAN_DIRS, *CHUNK_DIRS, *AGG_DIRS})):
            if p in scanned:
                continue
            scanned.add(p)
            self.lint_file(p)
        for v in self.violations:
            print(v)
        if self.violations:
            print(f"plv-lint: {len(self.violations)} violation(s)", file=sys.stderr)
            return 1
        print(f"plv-lint: clean ({len(scanned)} files)")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    args = ap.parse_args()
    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent.parent)
    return Linter(root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
