// Baseline comparison — Louvain (sequential / parallel) vs label
// propagation.
//
// The paper's related-work section (VI) positions Louvain against the LP
// family used by Staudt [10], Soman [45] and Ovelgönne [12]. This harness
// quantifies the trade the paper implies: LP converges in very few sweeps
// but leaves modularity (and coverage balance) on the table, while the
// parallel Louvain engine matches the sequential baseline's quality.
#include <iostream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/louvain_par.hpp"
#include "graph/csr.hpp"
#include "metrics/modularity.hpp"
#include "metrics/partition_utils.hpp"
#include "metrics/quality.hpp"
#include "metrics/similarity.hpp"
#include "seq/label_prop.hpp"
#include "seq/louvain_seq.hpp"
#include "util.hpp"

int main() {
  plv::bench::banner("Baseline comparison: Louvain (seq/par) vs label propagation",
                     "Quality columns: modularity, coverage, mean conductance, NMI vs ground truth.");

  plv::TextTable table({"graph", "engine", "seconds", "Q", "coverage", "mean-phi",
                        "communities", "NMI-vs-truth"});

  for (const auto& graph : plv::bench::social_standins()) {
    const auto csr = plv::graph::Csr::from_edges(graph.edges, graph.n);
    const auto add = [&](const char* engine, double seconds,
                         const std::vector<plv::vid_t>& labels) {
      table.row()
          .add(graph.name)
          .add(engine)
          .add(seconds)
          .add(plv::metrics::modularity(csr, labels))
          .add(plv::metrics::coverage(csr, labels))
          .add(plv::metrics::conductance(csr, labels).mean)
          .add(plv::metrics::count_communities(labels))
          .add(graph.ground_truth.empty()
                   ? 0.0
                   : plv::metrics::nmi(labels, graph.ground_truth));
    };

    plv::WallTimer t;
    const auto lv = plv::seq::louvain(csr);
    add("louvain-seq", t.seconds(), lv.final_labels);

    plv::core::ParOptions popts;
    popts.nranks = 4;
    t.reset();
    const auto lp_par = plv::louvain(plv::GraphSource::from_edges(graph.edges, graph.n), popts);
    add("louvain-par", t.seconds(), lp_par.final_labels);

    t.reset();
    const auto lpa = plv::seq::label_propagation(csr);
    add("label-prop", t.seconds(), lpa.labels);
  }
  table.print();
  std::cout << "\nreading: label-prop is the fastest but trails both Louvain\n"
               "engines on modularity; louvain-par tracks louvain-seq.\n";
  return 0;
}
