// Shared main() plumbing for the bench binaries.
//
// Two jobs, both about keeping the published perf trajectory honest:
//
//   1. Stamp every configuration axis that changes measured numbers into
//      the google-benchmark context, so a JSON record always says which
//      transport carried the run, whether the ValidatingTransport protocol
//      checker was active, and which sanitizer (if any) the binary was
//      built with.
//   2. Refuse to produce machine-readable output (--benchmark_out, the
//      publish path the perf scripts consume) when the checker or a
//      sanitizer is active: those runs measure the instrumentation, not
//      the runtime, and must never enter the trajectory. Interactive
//      console runs stay allowed — the stamped context labels them.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>

#include "pml/transport.hpp"
#include "pml/transport_check.hpp"
#include "pml/transport_hybrid.hpp"

namespace plv::bench {

/// Will Runtime::run / the core front doors wrap transports in the
/// protocol checker for this process? (Build default + env overrides —
/// the same resolution every entry point performs.)
[[nodiscard]] inline bool validation_active() {
  return pml::resolve_validate(pml::kValidateTransportDefault);
}

/// Detects the machine-readable output request. Must run on the raw argv
/// BEFORE benchmark::Initialize, which strips the flags it recognizes.
[[nodiscard]] inline bool wants_machine_output(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) return true;
  }
  return false;
}

/// Stamps transport/validation/sanitizer into the benchmark context and
/// applies the publish gate. Returns false (with a diagnostic) when the
/// run asked for machine output it must not have.
[[nodiscard]] inline bool stamp_context_and_gate(bool machine_output) {
  const char* sanitizer = pml::active_sanitizer_name();
  const bool validating = validation_active();
  const auto kind = pml::resolve_transport(pml::TransportKind::kThread);
  benchmark::AddCustomContext("transport", pml::transport_kind_name(kind));
  // Topology axis: single-tier backends run flat collectives; a hybrid
  // binary runs the resolved group shape (PLV_RANKS_PER_PROC), unless the
  // A/B baseline forces flat collectives over the composed substrate.
  // Benches that pin an explicit HybridOptions fleet (micro_pml's hier
  // A/B) label their variants in the benchmark name instead.
  std::string topology = "flat";
  if (kind == pml::TransportKind::kHybrid) {
    const auto hybrid = pml::resolve_hybrid_options({});
    topology = hybrid.flat_collectives
                   ? "flat-collectives"
                   : "groups-of-" + std::to_string(hybrid.ranks_per_proc);
  }
  benchmark::AddCustomContext("topology", topology);
  benchmark::AddCustomContext("validation", validating ? "on" : "off");
  benchmark::AddCustomContext("sanitizer", sanitizer);
  if (machine_output && (validating || std::strcmp(sanitizer, "none") != 0)) {
    std::cerr << "bench: refusing --benchmark_out: this binary would measure "
                 "instrumentation, not the runtime (validation "
              << (validating ? "on" : "off") << ", sanitizer " << sanitizer
              << "). Rebuild without sanitizers and run with PLV_VALIDATE=0 "
                 "(or a Release build) to publish numbers.\n";
    return false;
  }
  return true;
}

}  // namespace plv::bench
