// Micro-benchmarks of the messaging layer (google-benchmark).
//
// The paper attributes its scalability to a runtime "specifically
// designed for fine-grained applications" (abstract). These measure the
// constants of our substitute: collective latency, alltoallv exchange
// bandwidth, quiescence-protocol overhead, and the fine-grained
// aggregation path's records/second at different coalescing capacities —
// the knob the Aggregator exists for.
//
// The fine-grained benchmarks run several phases inside one Runtime so
// the chunk pool reaches steady state (zero allocation, zero copy beyond
// record coalescing), exactly as the Louvain phases use it; runtime
// spin-up is amortized across the phase batch.
#include <benchmark/benchmark.h>

#include "bench_context.hpp"
#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "pml/aggregator.hpp"
#include "pml/comm.hpp"
#include "pml/transport_hybrid.hpp"

namespace {

using plv::pml::Aggregator;
using plv::pml::Comm;
using plv::pml::HybridOptions;
using plv::pml::Runtime;
using plv::pml::TransportKind;

void BM_Barrier(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime::run(nranks, [&](Comm& comm) {
      for (int i = 0; i < 100; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8);

void BM_AllreduceSum(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Runtime::run(nranks, [&](Comm& comm) {
      std::uint64_t acc = 0;
      for (int i = 0; i < 100; ++i) {
        acc += comm.allreduce_sum<std::uint64_t>(static_cast<std::uint64_t>(comm.rank()));
      }
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_AllreduceSum)->Arg(2)->Arg(4)->Arg(8);

void BM_ExchangeBandwidth(benchmark::State& state) {
  const int nranks = 4;
  const auto records = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Runtime::run(nranks, [&](Comm& comm) {
      std::vector<std::vector<std::uint64_t>> out(nranks);
      for (int d = 0; d < nranks; ++d) out[d].assign(records, 42);
      const auto in = comm.exchange(out);
      benchmark::DoNotOptimize(in.size());
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records) * nranks * nranks);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(records * sizeof(std::uint64_t)) *
                          nranks * nranks);
}
BENCHMARK(BM_ExchangeBandwidth)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

/// Cost of an empty fine-grained phase: nothing but the counted-termination
/// markers. The seed protocol paid one allreduce to settle the sent count
/// plus at least one more per poll round; the current one pays zero
/// collective rounds.
void BM_QuiescenceLatency(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  constexpr int kPhases = 100;
  for (auto _ : state) {
    Runtime::run(nranks, [&](Comm& comm) {
      for (int p = 0; p < kPhases; ++p) {
        comm.drain_until_quiescent<int>([](int, std::span<const int>) {});
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kPhases);
}
BENCHMARK(BM_QuiescenceLatency)->Arg(2)->Arg(4)->Arg(8);

void BM_AggregatorThroughput(benchmark::State& state) {
  // The Fig.-style coalescing sweep: tiny chunks vs paper-sized chunks.
  // 4-rank all-to-all record exchange through the aggregators; phases
  // repeat inside one runtime so pooled chunks circulate.
  const auto capacity = static_cast<std::size_t>(state.range(0));
  constexpr int nranks = 4;
  constexpr int kPhases = 16;
  constexpr std::size_t kRecords = 50000;
  struct Rec {
    std::uint32_t a, b;
    double w;
  };
  for (auto _ : state) {
    Runtime::run(nranks, [&](Comm& comm) {
      for (int p = 0; p < kPhases; ++p) {
        Aggregator<Rec> agg(comm, capacity);
        for (std::size_t i = 0; i < kRecords; ++i) {
          agg.push(static_cast<int>(i % nranks), Rec{1, 2, 3.0});
        }
        agg.flush_all();
        std::size_t got = 0;
        comm.drain_until_quiescent<Rec>(
            [&](int, std::span<const Rec> recs) { got += recs.size(); });
        benchmark::DoNotOptimize(got);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kPhases *
                          static_cast<std::int64_t>(kRecords) * nranks);
}
BENCHMARK(BM_AggregatorThroughput)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

// Hierarchical vs flat collectives, interleaved A/B on the SAME composed
// hybrid substrate: an 8-rank fleet of 4 forked processes x 2 thread
// ranks. Arg 0 runs the flat baseline (flat_collectives publishes the
// trivial topology, so every collective crosses the group boundary for
// each remote rank); Arg 1 runs the two-level path (intra-group combine
// at the leader, leaders-only cross phase, broadcast down). Both variants
// run in one benchmark session per the BM_OverlapAB discipline — same
// process, same thermal/cache state — so the latency delta is the
// collective discipline alone. The inter-group counter is rank 0's own
// view (rank 0 always runs in the calling process): 6 boundary crossings
// per collective flat vs 3 (one per peer leader) hierarchical.
void BM_HierCollectivesAB(benchmark::State& state) {
  const bool hier = state.range(0) != 0;
  constexpr int nranks = 8;
  constexpr int kRounds = 50;
  const bool validate = plv::bench::validation_active();
  std::uint64_t inter_group = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    std::uint64_t rank0_inter = 0;  // rank 0 writes caller-scope state on every backend
    Runtime::run(
        nranks,
        [&](Comm& comm) {
          std::uint64_t acc = 0;
          for (int i = 0; i < kRounds; ++i) {
            acc += comm.allreduce_sum<std::uint64_t>(
                static_cast<std::uint64_t>(comm.rank()));
            comm.barrier();
          }
          benchmark::DoNotOptimize(acc);
          if (comm.rank() == 0) rank0_inter = comm.stats().inter_group_messages;
        },
        TransportKind::kHybrid, validate, {},
        HybridOptions{.ranks_per_proc = 2, .flat_collectives = !hier});
    inter_group += rank0_inter;
    ++runs;
  }
  // allreduce + barrier per round = two collectives.
  state.SetItemsProcessed(state.iterations() * kRounds * 2);
  state.counters["rank0_inter_group_per_collective"] =
      runs > 0 ? static_cast<double>(inter_group) /
                     (static_cast<double>(runs) * kRounds * 2)
               : 0.0;
}
BENCHMARK(BM_HierCollectivesAB)->ArgName("hier")->Arg(0)->Arg(1);

// The headline number: inter-group collective traffic per refine
// iteration of the real engine at 8 ranks (4x2 hybrid), flat vs
// hierarchical collectives on the same substrate. The two disciplines are
// bit-identical on this input (pinned by TransportEquivalence), so both
// variants perform the same label trajectory and the traffic counters
// compare like for like. inter_group is the fleet-wide reduction over all
// ranks' TrafficStats.
const plv::graph::EdgeList& hier_workload() {
  static const auto g = plv::gen::lfr({.n = 1000, .mu = 0.3, .seed = 29});
  return g.edges;
}

void BM_HierRefineRoundsAB(benchmark::State& state) {
  const bool hier = state.range(0) != 0;
  plv::core::ParOptions opts;
  opts.nranks = 8;
  opts.transport = TransportKind::kHybrid;
  opts.ranks_per_proc = 2;
  opts.flat_collectives = !hier;

  std::uint64_t collectives = 0;
  std::uint64_t inter_group = 0;
  std::uint64_t iterations = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const auto r = plv::louvain(plv::GraphSource::from_edges(hier_workload(), 1000), opts);
    benchmark::DoNotOptimize(r.final_modularity);
    collectives += r.traffic.collectives;
    inter_group += r.traffic.inter_group_messages;
    for (const auto& level : r.levels) {
      iterations += level.trace.modularity.size();
    }
    ++runs;
  }
  const double inv_runs = runs > 0 ? 1.0 / static_cast<double>(runs) : 0.0;
  const double inv_iters =
      iterations > 0 ? 1.0 / static_cast<double>(iterations) : 0.0;
  state.counters["collectives"] = static_cast<double>(collectives) * inv_runs;
  state.counters["inter_group_msgs"] = static_cast<double>(inter_group) * inv_runs;
  state.counters["inter_group_msgs_per_iter"] =
      static_cast<double>(inter_group) * inv_iters;
  state.counters["collectives_per_iter"] =
      static_cast<double>(collectives) * inv_iters;
}
BENCHMARK(BM_HierRefineRoundsAB)
    ->ArgName("hier")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of benchmark_main: stamp transport + validation +
// sanitizer into the benchmark context, and refuse machine-readable output
// when the protocol checker or a sanitizer would taint the numbers
// (bench_context.hpp).
int main(int argc, char** argv) {
  const bool machine_output = plv::bench::wants_machine_output(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!plv::bench::stamp_context_and_gate(machine_output)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
