// Fig. 2 — Simulation Analysis Comparison.
//
// The paper traces the fraction of vertices that move per inner-loop
// iteration of *sequential* Louvain on LFR graphs with varying community
// structure (k, γ, β, μ), then fits the exponential threshold ε(iter)
// used by the parallel heuristic. This harness reruns that study: for
// each LFR configuration it prints the per-iteration move fractions and
// the regression fit ε = p1·e^(−iter/p2), plus the pooled fit whose
// parameters seed core::ParOptions' defaults.
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "gen/lfr.hpp"
#include "graph/csr.hpp"
#include "seq/louvain_seq.hpp"
#include "util.hpp"

namespace {

struct Config {
  const char* label;
  plv::gen::LfrParams params;
};

}  // namespace

int main() {
  plv::bench::banner(
      "Fig. 2: vertex move fraction vs inner iteration + regression fit",
      "LFR n=20000 (paper: 100k); 5 repetitions per configuration.");

  std::vector<Config> configs;
  for (double mu : {0.2, 0.4, 0.6}) {
    for (std::uint32_t kmax : {32u, 64u}) {
      plv::gen::LfrParams p;
      p.n = 20000;
      p.k_min = 8;
      p.k_max = kmax;
      p.gamma = 2.5;
      p.c_min = 32;
      p.c_max = 512;
      p.beta = 1.5;
      p.mu = mu;
      static char labels[6][64];
      const std::size_t idx = configs.size();
      std::snprintf(labels[idx], sizeof labels[idx], "mu=%.1f kmax=%u", mu, kmax);
      configs.push_back({labels[idx], p});
    }
  }

  std::vector<double> all_x, all_y;
  plv::TextTable table({"config", "iter", "mean move fraction"});
  for (auto& [label, params] : configs) {
    std::vector<double> mean_frac;
    constexpr int kReps = 5;
    for (int rep = 0; rep < kReps; ++rep) {
      params.seed = 1000 + static_cast<std::uint64_t>(rep);
      const auto g = plv::gen::lfr(params);
      const auto csr = plv::graph::Csr::from_edges(g.edges, params.n);
      const auto result = plv::seq::louvain(csr);
      const auto& frac = result.levels.front().trace.moved_fraction;
      if (mean_frac.size() < frac.size()) mean_frac.resize(frac.size(), 0.0);
      for (std::size_t i = 0; i < frac.size(); ++i) mean_frac[i] += frac[i] / kReps;
    }
    for (std::size_t i = 0; i < mean_frac.size(); ++i) {
      table.row().add(label).add(i + 1).add(mean_frac[i]);
      all_x.push_back(static_cast<double>(i + 1));
      all_y.push_back(mean_frac[i]);
    }
  }
  table.print();

  const auto eq7 = plv::bench::fit_eq7(all_x, all_y);
  const auto decay = plv::bench::fit_exponential_decay(all_x, all_y);
  std::cout << "\npooled Eq. 7 regression:  eps(iter) = " << eq7.p1
            << " * exp(1 / (" << eq7.p2 << " * iter))   [R^2(log) = " << eq7.r2
            << "]\n"
            << "pure-decay alternative:   eps(iter) = " << decay.p1
            << " * exp(-iter / " << decay.p2 << ")      [R^2(log) = " << decay.r2
            << "]\n"
            << "core::ParOptions ships (p1, p2) = (0.03, 0.3) for Eq. 7 — compare\n"
            << "with the pooled fit above; Eq. 7's floor (eps -> p1) is what keeps\n"
            << "late-iteration refinement alive (see ablation_threshold).\n";
  return 0;
}
