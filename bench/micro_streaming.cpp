// Micro-benchmark of streaming update latency: Session::apply — resident
// fleet, in-place In_Table patching, dirty-region re-refine
// (StreamingPlan::fast()) — against a cold plv::louvain rebuild of the
// same updated graph, as a function of batch size (google-benchmark).
//
// Both variants replay the *same* deterministic update sequence: each
// batch removes the previous batch's insertions and injects a fresh set
// of random edges, so the graph stays in a steady state and every timed
// iteration does comparable work. Batch construction (and the cold
// variant's mirror-list maintenance) happens outside the timed region;
// what is measured is exactly "new batch in → new epoch out". The session
// and cold variants of each batch size run interleaved inside one binary
// — same process, same thermal/cache state — per ROADMAP's noisy-CI
// discipline. The acceptance bar: for batches ≤1% of the edges, the
// session apply must undercut the cold rebuild by ≥5×.
//
// Counters (per run): batch_edges (absolute batch size) and q_final (the
// last epoch's modularity — a sanity anchor that the incremental path is
// still finding real structure, not just returning fast).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_context.hpp"
#include "common/louvain.hpp"
#include "common/random.hpp"
#include "core/options.hpp"
#include "core/session.hpp"
#include "gen/lfr.hpp"

namespace {

constexpr plv::vid_t kN = 4000;

const plv::graph::EdgeList& workload() {
  static const auto g = plv::gen::lfr({.n = kN, .mu = 0.3, .seed = 71});
  return g.edges;
}

/// The next update batch of the steady-state churn: retract what the
/// previous batch injected, inject `k` fresh random edges.
plv::EdgeDelta next_batch(plv::Xoshiro256& rng, std::vector<plv::Edge>& pending,
                          std::size_t k) {
  plv::EdgeDelta delta;
  for (const plv::Edge& e : pending) delta.removals.add(e.u, e.v, e.w);
  pending.clear();
  pending.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto u = static_cast<plv::vid_t>(rng.next_below(kN));
    auto v = static_cast<plv::vid_t>(rng.next_below(kN));
    while (v == u) v = static_cast<plv::vid_t>(rng.next_below(kN));
    delta.inserts.add(u, v, 1.0);
    pending.push_back(plv::Edge{u, v, 1.0});
  }
  return delta;
}

/// Arg = batch size in per-mille of the edge count (1 = 0.1%, 10 = 1%).
std::size_t batch_edges(std::int64_t permille) {
  return workload().size() * static_cast<std::size_t>(permille) / 1000;
}

void BM_SessionApply(benchmark::State& state) {
  const std::size_t k = batch_edges(state.range(0));
  plv::core::ParOptions opts;
  opts.nranks = 4;
  opts.streaming = plv::core::StreamingPlan::fast();
  plv::Session session(plv::GraphSource::from_edges(workload(), kN), opts);
  plv::Xoshiro256 rng(2024);
  std::vector<plv::Edge> pending;
  double q = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    const plv::EdgeDelta delta = next_batch(rng, pending, k);
    state.ResumeTiming();
    const auto snap = session.apply(delta);
    benchmark::DoNotOptimize(snap->epoch);
    q = snap->modularity;
  }
  state.counters["batch_edges"] = static_cast<double>(k);
  state.counters["q_final"] = q;
}

void BM_ColdRebuild(benchmark::State& state) {
  const std::size_t k = batch_edges(state.range(0));
  plv::core::ParOptions opts;
  opts.nranks = 4;
  plv::graph::EdgeList mirror = workload();
  plv::Xoshiro256 rng(2024);
  std::vector<plv::Edge> pending;
  double q = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    const plv::EdgeDelta delta = next_batch(rng, pending, k);
    plv::apply_edge_delta(mirror, delta);
    state.ResumeTiming();
    const auto r = plv::louvain(plv::GraphSource::from_edges(mirror, kN), opts);
    benchmark::DoNotOptimize(r.final_modularity);
    q = r.final_modularity;
  }
  state.counters["batch_edges"] = static_cast<double>(k);
  state.counters["q_final"] = q;
}

}  // namespace

// Interleaved A/B per batch size: session apply, then the cold baseline
// on the same churn sequence. Arg = batch size in per-mille of the edge
// count.
BENCHMARK(BM_SessionApply)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdRebuild)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SessionApply)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdRebuild)->Arg(10)->Unit(benchmark::kMillisecond);

// Custom main instead of benchmark_main: stamp the pml transport into the
// benchmark context so published JSON records which backend carried the run.
int main(int argc, char** argv) {
  const bool machine_output = plv::bench::wants_machine_output(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!plv::bench::stamp_context_and_gate(machine_output)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
