// Fig. 9 — Scaling Analysis (TEPS).
//
// (a) weak scaling: constant per-rank work — R-MAT (2^16 vertices, 2^20
//     edges per rank; paper: 2^20/2^24 per BG/Q node) and BTER with GCC
//     0.15 vs 0.55 (paper: 2^22 vertices/node on P7-IH);
// (b/c) strong scaling: fixed graph, growing rank count.
//
// TEPS = input edges / time to finish the first level (paper Section
// V-E). Hardware gate: one core — the TEPS columns show the harness and
// the trend in communication volume; absolute scaling needs real ranks.
#include <iostream>
#include <cmath>

#include "common/table.hpp"
#include "core/louvain_par.hpp"
#include "gen/bter.hpp"
#include "gen/rmat.hpp"
#include "util.hpp"

namespace {

double first_level_seconds(const plv::core::ParResult& r) {
  return r.levels.empty() ? 0.0 : r.levels.front().seconds;
}

}  // namespace

int main() {
  plv::bench::banner("Fig. 9: weak scaling (a) and strong scaling (b, c), TEPS",
                     "Scaled: ranks 1..8, weak: 2^13 vertices/rank (paper: 8192 BG/Q nodes).");

  // --- (a) weak scaling: per-rank work constant (2^13 vertices / 2^16
  // edges per rank, the paper's 2^20 / 2^24 shrunk to container scale).
  // Each rank generates its own R-MAT slice via the distributed ingestion
  // path — the same no-global-edge-list setup as the paper's 138 G-edge
  // runs.
  std::cout << "(a) weak scaling\n";
  std::string transport;  // stamped by the first run
  plv::TextTable weak({"workload", "ranks", "edges", "first-level-s", "TEPS", "Q",
                       "records-sent/rank"});
  for (int ranks : {1, 2, 4, 8}) {
    plv::gen::RmatParams rp;
    rp.scale = 13 + static_cast<unsigned>(std::log2(ranks));
    rp.edge_factor = 8;
    rp.seed = 9;
    const std::uint64_t total = static_cast<std::uint64_t>(rp.edge_factor) << rp.scale;
    plv::core::ParOptions opts;
    opts.nranks = ranks;
    const plv::EdgeSliceFn slice = [&](int rank, int nranks) {
      const std::uint64_t per = total / static_cast<std::uint64_t>(nranks);
      const std::uint64_t first = per * static_cast<std::uint64_t>(rank);
      return plv::gen::rmat_slice(rp, first, rank == nranks - 1 ? total - first : per);
    };
    const auto r =
        plv::louvain(plv::GraphSource::from_stream(slice, 1u << rp.scale), opts);
    transport = r.transport;
    const double s = first_level_seconds(r);
    weak.row()
        .add("R-MAT (streamed)")
        .add(ranks)
        .add(total)
        .add(s)
        .add(s > 0 ? static_cast<double>(total) / s : 0.0, 0)
        .add(r.final_modularity)
        .add(r.traffic.records_sent / static_cast<std::uint64_t>(ranks));
  }
  for (double gcc : {0.15, 0.55}) {
    for (int ranks : {1, 2, 4, 8}) {
      plv::gen::BterParams bp;
      bp.n = static_cast<plv::vid_t>(6000 * ranks);  // vertices grow with ranks
      bp.gcc_target = gcc;
      bp.seed = 10;
      const auto g = plv::gen::bter(bp);
      plv::core::ParOptions opts;
      opts.nranks = ranks;
      const auto r = plv::louvain(plv::GraphSource::from_edges(g.edges, bp.n), opts);
      const double s = first_level_seconds(r);
      weak.row()
          .add("BTER gcc=" + std::to_string(gcc).substr(0, 4))
          .add(ranks)
          .add(g.edges.size())
          .add(s)
          .add(s > 0 ? static_cast<double>(g.edges.size()) / s : 0.0, 0)
          .add(r.final_modularity)
          .add(r.traffic.records_sent / static_cast<std::uint64_t>(ranks));
    }
  }
  weak.print();
  std::cout << "(paper shape: higher GCC => higher modularity and slightly higher\n"
               " TEPS; check the Q column ordering between gcc=0.15 and 0.55)\n\n";

  // --- (b/c) strong scaling: fixed graph. ----------------------------------
  std::cout << "(b/c) strong scaling\n";
  plv::TextTable strong({"workload", "ranks", "first-level-s", "TEPS", "records-sent"});
  plv::gen::RmatParams rp;
  rp.scale = 15;
  rp.edge_factor = 8;
  rp.seed = 11;
  const auto rmat_edges = plv::gen::rmat(rp);
  plv::gen::BterParams bp;
  bp.n = 25000;
  bp.gcc_target = 0.5;
  bp.seed = 12;
  const auto bter_graph = plv::gen::bter(bp);

  for (int ranks : {1, 2, 4, 8}) {
    plv::core::ParOptions opts;
    opts.nranks = ranks;
    {
      const auto r =
          plv::louvain(plv::GraphSource::from_edges(rmat_edges, 1u << rp.scale), opts);
      const double s = first_level_seconds(r);
      strong.row()
          .add("R-MAT scale 15")
          .add(ranks)
          .add(s)
          .add(s > 0 ? static_cast<double>(rmat_edges.size()) / s : 0.0, 0)
          .add(r.traffic.records_sent);
    }
    {
      const auto r =
          plv::louvain(plv::GraphSource::from_edges(bter_graph.edges, bp.n), opts);
      const double s = first_level_seconds(r);
      strong.row()
          .add("BTER n=25k")
          .add(ranks)
          .add(s)
          .add(s > 0 ? static_cast<double>(bter_graph.edges.size()) / s : 0.0, 0)
          .add(r.traffic.records_sent);
    }
  }
  strong.print();
  std::cout << "\ntransport: " << transport << "\n";
  std::cout << "\n(single-core container: TEPS cannot grow with ranks here; on real\n"
               " hardware the paper reaches 1.54 GTEPS on 8192 BG/Q nodes)\n";
  return 0;
}
