// Micro-benchmarks (google-benchmark): hash functions, edge-table
// operations, and the messaging layer's aggregation path. These quantify
// the constants behind the paper's design choices: Fibonacci hashing is
// "high-quality and computationally inexpensive" (Section I-B), and
// insert/scan costs dominate STATE PROPAGATION.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.hpp"
#include "gen/rmat.hpp"
#include "hashing/bucket_table.hpp"
#include "hashing/edge_table.hpp"

namespace {

using plv::hashing::EdgeTable;
using plv::hashing::HashKind;

void BM_HashFunction(benchmark::State& state) {
  const auto kind = static_cast<HashKind>(state.range(0));
  plv::Xoshiro256 rng(1);
  std::vector<std::uint64_t> keys(4096);
  for (auto& k : keys) k = rng();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plv::hashing::apply_hash(kind, keys[i++ & 4095], 1 << 20));
  }
}
BENCHMARK(BM_HashFunction)
    ->Arg(static_cast<int>(HashKind::kFibonacci))
    ->Arg(static_cast<int>(HashKind::kLinearCongruential))
    ->Arg(static_cast<int>(HashKind::kBitwise))
    ->Arg(static_cast<int>(HashKind::kConcatenated));

void BM_EdgeTableInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  plv::Xoshiro256 rng(2);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng();
  for (auto _ : state) {
    EdgeTable t(n, 0.25);
    for (std::uint64_t k : keys) t.insert_or_add(k, 1.0);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EdgeTableInsert)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 18);

void BM_EdgeTableInsertLoadFactor(benchmark::State& state) {
  // The paper's Fig. 6d trade-off, as time instead of bin length.
  const double load = 1.0 / static_cast<double>(state.range(0));
  constexpr std::size_t kN = 1 << 16;
  plv::Xoshiro256 rng(3);
  std::vector<std::uint64_t> keys(kN);
  for (auto& k : keys) k = rng();
  for (auto _ : state) {
    EdgeTable t(kN, load);
    for (std::uint64_t k : keys) t.insert_or_add(k, 1.0);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kN));
}
BENCHMARK(BM_EdgeTableInsertLoadFactor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_EdgeTableScan(benchmark::State& state) {
  constexpr std::size_t kN = 1 << 16;
  plv::Xoshiro256 rng(4);
  EdgeTable t(kN, 0.25);
  for (std::size_t i = 0; i < kN; ++i) t.insert_or_add(rng(), 1.0);
  for (auto _ : state) {
    double sum = 0;
    t.for_each([&](std::uint64_t, double w) { sum += w; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kN));
}
BENCHMARK(BM_EdgeTableScan);

void BM_EdgeTableInsertRmatKeys(benchmark::State& state) {
  // Real workload shape: R-MAT edge keys instead of uniform random.
  plv::gen::RmatParams p;
  p.scale = 14;
  p.edge_factor = 8;
  const auto edges = plv::gen::rmat(p);
  for (auto _ : state) {
    EdgeTable t(edges.size(), 0.25);
    for (const auto& e : edges.edges()) {
      t.insert_or_add(plv::pack_key(e.u, e.v), e.w);
    }
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_EdgeTableInsertRmatKeys);

}  // namespace
