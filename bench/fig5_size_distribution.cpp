// Fig. 5 — Community Size Distribution with Small Social Graphs.
//
// The paper plots the distribution of detected community sizes on Amazon
// and ND-Web for the sequential and parallel algorithms, showing matching
// shapes (few large communities, many small ones) and reports the largest
// community each engine finds. Same harness, LFR stand-ins.
#include <iostream>

#include "common/table.hpp"
#include "core/louvain_par.hpp"
#include "graph/csr.hpp"
#include "metrics/partition_utils.hpp"
#include "seq/louvain_seq.hpp"
#include "util.hpp"

int main() {
  plv::bench::banner("Fig. 5: community size distribution (sequential vs parallel)",
                     "Amazon / ND-Web replaced by LFR stand-ins.");

  plv::TextTable table({"graph", "size-bin", "sequential", "parallel"});
  plv::TextTable extremes({"graph", "engine", "communities", "largest", "median-size"});

  for (const auto& graph : plv::bench::social_standins()) {
    if (graph.name != "Amazon" && graph.name != "ND-Web") continue;
    const auto csr = plv::graph::Csr::from_edges(graph.edges, graph.n);

    const auto seq = plv::seq::louvain(csr);
    plv::core::ParOptions opts;
    opts.nranks = 4;
    const auto par = plv::louvain(plv::GraphSource::from_edges(graph.edges, graph.n), opts);

    auto d_seq = plv::metrics::size_distribution_log2(seq.final_labels);
    auto d_par = plv::metrics::size_distribution_log2(par.final_labels);
    const std::size_t bins = std::max(d_seq.size(), d_par.size());
    d_seq.resize(bins, 0);
    d_par.resize(bins, 0);
    for (std::size_t b = 0; b < bins; ++b) {
      if (d_seq[b] == 0 && d_par[b] == 0) continue;
      table.row()
          .add(graph.name)
          .add("[" + std::to_string(1ULL << b) + "," + std::to_string(1ULL << (b + 1)) +
               ")")
          .add(d_seq[b])
          .add(d_par[b]);
    }

    for (const auto& [engine, labels] :
         {std::pair{"sequential", &seq.final_labels}, {"parallel", &par.final_labels}}) {
      auto sizes = plv::metrics::community_sizes(*labels);
      std::sort(sizes.begin(), sizes.end());
      extremes.row()
          .add(graph.name)
          .add(engine)
          .add(sizes.size())
          .add(sizes.empty() ? 0 : sizes.back())
          .add(sizes.empty() ? 0 : sizes[sizes.size() / 2]);
    }
  }

  table.print();
  std::cout << "\nlargest/median community per engine (paper: 358 vs 278 for Amazon,\n"
               "5020 vs 5286 for ND-Web — shapes, not absolutes, at our scale):\n";
  extremes.print();
  return 0;
}
