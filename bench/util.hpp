// Shared helpers for the bench harnesses that regenerate the paper's
// tables and figures.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace plv::bench {

/// A laptop-scale stand-in for one of the paper's real-world graphs
/// (Table I). Generated with LFR parameters chosen to mimic the original
/// graph's community character (see social_standins() in util.cpp); the
/// substitution is recorded in DESIGN.md.
struct StandIn {
  std::string name;        // the paper graph it stands in for
  std::string description;
  graph::EdgeList edges;
  vid_t n{0};
  std::vector<vid_t> ground_truth;  // empty when the generator has none
};

/// Stand-ins for the small/medium social graphs used by Fig. 4/5 and
/// Table III: Amazon, DBLP, ND-Web, YouTube, LiveJournal, Wikipedia.
/// `scale` multiplies the default vertex counts (1 = default ≈ 2-6k).
[[nodiscard]] std::vector<StandIn> social_standins(double scale = 1.0);

/// Least-squares fit of y ≈ p1 · e^(−x / p2) by linear regression of
/// log(y) on x. Points with y <= 0 are skipped. Returns {p1, p2}.
struct ExpFit {
  double p1{0.0};
  double p2{0.0};
  double r2{0.0};  // coefficient of determination in log space
};
[[nodiscard]] ExpFit fit_exponential_decay(const std::vector<double>& xs,
                                           const std::vector<double>& ys);

/// Least-squares fit of the paper's Eq. 7, y ≈ p1 · e^(1/(p2·x)): linear
/// regression of log(y) on 1/x (slope = 1/p2, intercept = ln p1).
[[nodiscard]] ExpFit fit_eq7(const std::vector<double>& xs, const std::vector<double>& ys);

/// Prints the standard bench banner: which paper artifact this harness
/// regenerates and the substitutions in play.
void banner(const std::string& artifact, const std::string& notes);

}  // namespace plv::bench
