#include "util.hpp"

#include <cmath>
#include <iostream>

#include "gen/lfr.hpp"

namespace plv::bench {

std::vector<StandIn> social_standins(double scale) {
  // Each stand-in keeps the *relative* character of its original: web
  // graphs (ND-Web, UK-2005) get strong, larger communities (low μ);
  // social networks (YouTube, LiveJournal) get noisier mixing; co-purchase
  // / collaboration graphs (Amazon, DBLP) sit in between with small
  // communities. Absolute sizes are laptop-scale.
  struct Spec {
    const char* name;
    const char* description;
    vid_t n;
    double mu;
    std::uint32_t k_min, k_max, c_min, c_max;
    std::uint64_t seed;
  };
  const Spec specs[] = {
      {"Amazon", "product co-purchasing: many small communities", 3000, 0.30, 4, 24, 8,
       64, 101},
      {"DBLP", "collaboration: small dense groups", 3000, 0.25, 4, 32, 8, 96, 102},
      {"ND-Web", "web pages: strong large communities", 3200, 0.15, 4, 40, 16, 256, 103},
      {"YouTube", "social: noisy, weak communities", 4000, 0.50, 4, 40, 8, 128, 104},
      {"LiveJournal", "social: mixed community strength", 5000, 0.40, 6, 48, 16, 256,
       105},
      {"Wikipedia", "dense hyperlink graph, weak communities", 5000, 0.55, 8, 64, 16,
       256, 106},
  };
  std::vector<StandIn> out;
  for (const Spec& s : specs) {
    gen::LfrParams p;
    p.n = static_cast<vid_t>(static_cast<double>(s.n) * scale);
    p.mu = s.mu;
    p.k_min = s.k_min;
    p.k_max = s.k_max;
    p.c_min = s.c_min;
    p.c_max = s.c_max;
    p.seed = s.seed;
    auto g = gen::lfr(p);
    StandIn si;
    si.name = s.name;
    si.description = s.description;
    si.n = p.n;
    si.edges = std::move(g.edges);
    si.ground_truth = std::move(g.ground_truth);
    out.push_back(std::move(si));
  }
  return out;
}

ExpFit fit_exponential_decay(const std::vector<double>& xs, const std::vector<double>& ys) {
  // Linear regression of ln(y) = ln(p1) − x/p2.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (ys[i] <= 0) continue;
    const double x = xs[i];
    const double y = std::log(ys[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  ExpFit fit;
  if (n < 2) return fit;
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0) return fit;
  const double slope = (dn * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / dn;
  fit.p1 = std::exp(intercept);
  fit.p2 = slope < 0 ? -1.0 / slope : 0.0;

  // R² in log space.
  const double mean_y = sy / dn;
  double ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (ys[i] <= 0) continue;
    const double y = std::log(ys[i]);
    const double pred = intercept + slope * xs[i];
    ss_tot += (y - mean_y) * (y - mean_y);
    ss_res += (y - pred) * (y - pred);
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

ExpFit fit_eq7(const std::vector<double>& xs, const std::vector<double>& ys) {
  // ln(y) = ln(p1) + (1/p2) * (1/x).
  double sz = 0, sy = 0, szz = 0, szy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (ys[i] <= 0 || xs[i] <= 0) continue;
    const double z = 1.0 / xs[i];
    const double y = std::log(ys[i]);
    sz += z;
    sy += y;
    szz += z * z;
    szy += z * y;
    ++n;
  }
  ExpFit fit;
  if (n < 2) return fit;
  const double dn = static_cast<double>(n);
  const double denom = dn * szz - sz * sz;
  if (denom == 0) return fit;
  const double slope = (dn * szy - sz * sy) / denom;
  const double intercept = (sy - slope * sz) / dn;
  fit.p1 = std::exp(intercept);
  fit.p2 = slope > 0 ? 1.0 / slope : 0.0;

  const double mean_y = sy / dn;
  double ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (ys[i] <= 0 || xs[i] <= 0) continue;
    const double y = std::log(ys[i]);
    const double pred = intercept + slope / xs[i];
    ss_tot += (y - mean_y) * (y - mean_y);
    ss_res += (y - pred) * (y - pred);
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

void banner(const std::string& artifact, const std::string& notes) {
  std::cout << "==============================================================\n"
            << artifact << '\n'
            << "(Que, Checconi, Petrini, Gunnels: \"Scalable Community\n"
            << " Detection with the Louvain Algorithm\", IPDPS 2015)\n";
  if (!notes.empty()) std::cout << notes << '\n';
  std::cout << "==============================================================\n";
}

}  // namespace plv::bench
