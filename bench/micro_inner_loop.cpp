// Micro-benchmark of the REFINE inner loop: incremental Out_Table
// maintenance (delta propagation + flat hot-path tables) vs the legacy
// rebuild-every-iteration STATE PROPAGATION (google-benchmark).
//
// One benchmark, one knob: Arg is ParOptions::full_rebuild_every (1 =
// legacy full rebuild each iteration, 0 = never rebuild, 4 = hybrid
// cadence), so a single binary produces the A/B/n comparison and the CI
// bench-smoke job publishes all variants from one run. The paths are
// bit-compatible on the unit-weight LFR input, so every variant performs
// the *same* label trajectory — differences are pure propagation cost.
//
// Counters (per run): refine_s and prop_s from the engine's phase timers
// (max over ranks, the critical path), prop_records summed over the trace
// (total propagation records shipped by all ranks).
#include <benchmark/benchmark.h>

#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"

namespace {

const plv::graph::EdgeList& workload() {
  static const auto g = plv::gen::lfr({.n = 4000, .mu = 0.3, .seed = 71});
  return g.edges;
}

void BM_RefineInnerLoop(benchmark::State& state) {
  const int cadence = static_cast<int>(state.range(0));
  plv::core::ParOptions opts;
  opts.nranks = 4;
  opts.full_rebuild_every = cadence;

  double refine_s = 0.0;
  double prop_s = 0.0;
  std::uint64_t prop_records = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const auto r = plv::core::louvain_parallel(workload(), 4000, opts);
    benchmark::DoNotOptimize(r.final_modularity);
    refine_s += r.timers.get(plv::phase::kRefine);
    prop_s += r.timers.get(plv::phase::kStatePropagation);
    for (const auto& level : r.levels) {
      for (std::uint64_t recs : level.trace.prop_records) prop_records += recs;
    }
    ++runs;
  }
  const double inv_runs = runs > 0 ? 1.0 / static_cast<double>(runs) : 0.0;
  state.counters["refine_s"] = refine_s * inv_runs;
  state.counters["prop_s"] = prop_s * inv_runs;
  state.counters["prop_records"] = static_cast<double>(prop_records) * inv_runs;
}

}  // namespace

// Arg = full_rebuild_every: 1 = legacy full rebuild, 0 = pure delta,
// 4 = hybrid cadence.
BENCHMARK(BM_RefineInnerLoop)->Arg(1)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

// Custom main instead of benchmark_main: stamp the pml transport into the
// benchmark context so published JSON records which backend carried the run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext(
      "transport", plv::pml::transport_kind_name(
                       plv::pml::resolve_transport(plv::pml::TransportKind::kThread)));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
