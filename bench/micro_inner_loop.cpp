// Micro-benchmark of the REFINE inner loop: incremental Out_Table
// maintenance (delta propagation + flat hot-path tables) vs the legacy
// rebuild-every-iteration STATE PROPAGATION (google-benchmark).
//
// One benchmark, one knob: Arg is ParOptions::full_rebuild_every (1 =
// legacy full rebuild each iteration, 0 = never rebuild, 4 = hybrid
// cadence), so a single binary produces the A/B/n comparison and the CI
// bench-smoke job publishes all variants from one run. The paths are
// bit-compatible on the unit-weight LFR input, so every variant performs
// the *same* label trajectory — differences are pure propagation cost.
//
// Counters (per run): refine_s and prop_s from the engine's phase timers
// (max over ranks, the critical path), prop_records summed over the trace
// (total propagation records shipped by all ranks).
#include <benchmark/benchmark.h>

#include "bench_context.hpp"
#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"

namespace {

const plv::graph::EdgeList& workload() {
  static const auto g = plv::gen::lfr({.n = 4000, .mu = 0.3, .seed = 71});
  return g.edges;
}

// Small, synchronization-bound workload for the overlap A/B: per-iteration
// compute is tiny, so refine time is dominated by the per-iteration
// synchronization structure the overlap pipeline restructures.
const plv::graph::EdgeList& small_workload() {
  static const auto g = plv::gen::lfr({.n = 500, .mu = 0.3, .seed = 71});
  return g.edges;
}

void BM_RefineInnerLoop(benchmark::State& state) {
  const int cadence = static_cast<int>(state.range(0));
  plv::core::ParOptions opts;
  opts.nranks = 4;
  opts.full_rebuild_every = cadence;

  double refine_s = 0.0;
  double prop_s = 0.0;
  std::uint64_t prop_records = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const auto r = plv::louvain(plv::GraphSource::from_edges(workload(), 4000), opts);
    benchmark::DoNotOptimize(r.final_modularity);
    refine_s += r.timers.get(plv::phase::kRefine);
    prop_s += r.timers.get(plv::phase::kStatePropagation);
    for (const auto& level : r.levels) {
      for (std::uint64_t recs : level.trace.prop_records) prop_records += recs;
    }
    ++runs;
  }
  const double inv_runs = runs > 0 ? 1.0 / static_cast<double>(runs) : 0.0;
  state.counters["refine_s"] = refine_s * inv_runs;
  state.counters["prop_s"] = prop_s * inv_runs;
  state.counters["prop_records"] = static_cast<double>(prop_records) * inv_runs;
}

// Overlap A/B: the overlapped refine pipeline (streaming exchanges, fused
// Σin scan, piggybacked tally, merged reductions) against the phased
// baseline. Both variants run interleaved inside one benchmark session
// (per ROADMAP's noisy-CI note: same process, same thermal/cache state),
// and the two pipelines are bit-identical on this input, so every run
// performs the same label trajectory — differences are pure
// synchronization and scan cost. Counters publish per-phase seconds plus
// collective-round counts (total and per refine iteration) into the
// bench-smoke JSON.
void BM_OverlapAB(benchmark::State& state) {
  plv::core::ParOptions opts;
  opts.nranks = static_cast<int>(state.range(1));
  opts.overlap = state.range(0) != 0;
  const bool small = state.range(2) != 0;
  const auto& edges = small ? small_workload() : workload();
  const plv::vid_t n = small ? 500 : 4000;

  double refine_s = 0.0;
  double find_s = 0.0;
  double update_s = 0.0;
  double prop_s = 0.0;
  std::uint64_t collectives = 0;
  std::uint64_t iterations = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const auto r = plv::louvain(plv::GraphSource::from_edges(edges, n), opts);
    benchmark::DoNotOptimize(r.final_modularity);
    refine_s += r.timers.get(plv::phase::kRefine);
    find_s += r.timers.get(plv::phase::kFindBestCommunity);
    update_s += r.timers.get(plv::phase::kUpdateCommunity);
    prop_s += r.timers.get(plv::phase::kStatePropagation);
    collectives += r.traffic.collectives;
    for (const auto& level : r.levels) {
      iterations += level.trace.modularity.size();
    }
    ++runs;
  }
  const double inv_runs = runs > 0 ? 1.0 / static_cast<double>(runs) : 0.0;
  state.counters["refine_s"] = refine_s * inv_runs;
  state.counters["find_s"] = find_s * inv_runs;
  state.counters["update_s"] = update_s * inv_runs;
  state.counters["prop_s"] = prop_s * inv_runs;
  state.counters["collectives"] = static_cast<double>(collectives) * inv_runs;
  state.counters["collectives_per_iter"] =
      iterations > 0 ? static_cast<double>(collectives) / static_cast<double>(iterations)
                     : 0.0;
}

// Fig. 7-scale workload for the frontier A/B: the scan-reduction
// heuristics pay off in proportion to the per-rank partition size, so
// the A/B runs on a graph large enough that FIND dominates the refine
// loop (at 8 ranks the 4000-vertex workload above is 500 vertices per
// rank — collective-bound, hostile terrain for any scan optimization).
const plv::graph::EdgeList& frontier_workload() {
  static const auto g = plv::gen::lfr({.n = 20000, .mu = 0.3, .seed = 71});
  return g.edges;
}

// Frontier A/B: the refine heuristics bundle (active-vertex scheduling +
// min-label ties + vertex-following + threshold scaling,
// RefinePlan::heuristics()) against the stock full-scan defaults. Both
// variants run interleaved in one benchmark session (same process, same
// thermal/cache state — ROADMAP's noisy-CI note). The heuristics change
// the label trajectory by design, so the headline comparison is work, not
// bit-equality: refine/find wall-clock, iterations to convergence, and
// scanned vertices per FIND — overall and after iteration 2 of each
// level, where active scheduling has had a delta round to shrink the
// frontier (the first two iterations scan everything by construction:
// iteration 1 runs before any moves exist, iteration 2 follows the
// level's initial full propagation, which reactivates all).
void BM_FrontierAB(benchmark::State& state) {
  plv::core::ParOptions opts;
  opts.nranks = static_cast<int>(state.range(1));
  if (state.range(0) != 0) opts.refine = plv::core::RefinePlan::heuristics();

  double refine_s = 0.0;
  double find_s = 0.0;
  std::uint64_t iterations = 0;
  std::uint64_t scanned = 0;
  std::uint64_t late_iterations = 0;
  std::uint64_t late_scanned = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    const auto r =
        plv::louvain(plv::GraphSource::from_edges(frontier_workload(), 20000), opts);
    benchmark::DoNotOptimize(r.final_modularity);
    refine_s += r.timers.get(plv::phase::kRefine);
    find_s += r.timers.get(plv::phase::kFindBestCommunity);
    for (std::size_t l = 0; l < r.levels.size(); ++l) {
      const auto& level = r.levels[l];
      iterations += level.trace.scanned_vertices.size();
      for (std::size_t i = 0; i < level.trace.scanned_vertices.size(); ++i) {
        scanned += level.trace.scanned_vertices[i];
        // The after-iteration-2 cut is measured at level 0 only: that is
        // where the frontier operates (coarse levels below
        // min_frontier_vertices refine unrestricted, and folding their
        // tiny full scans into the average would mask the level-0 cut).
        // Iterations 1-2 scan everything by construction — iteration 1
        // runs before any moves exist and iteration 2 follows the
        // level's initial full propagation.
        if (l == 0 && i >= 2) {
          ++late_iterations;
          late_scanned += level.trace.scanned_vertices[i];
        }
      }
    }
    ++runs;
  }
  const double inv_runs = runs > 0 ? 1.0 / static_cast<double>(runs) : 0.0;
  state.counters["refine_s"] = refine_s * inv_runs;
  state.counters["find_s"] = find_s * inv_runs;
  state.counters["iterations"] = static_cast<double>(iterations) * inv_runs;
  state.counters["scanned_per_iter"] =
      iterations > 0 ? static_cast<double>(scanned) / static_cast<double>(iterations)
                     : 0.0;
  state.counters["l0_scanned_per_iter_after2"] =
      late_iterations > 0
          ? static_cast<double>(late_scanned) / static_cast<double>(late_iterations)
          : 0.0;
}

}  // namespace

// Arg = full_rebuild_every: 1 = legacy full rebuild, 0 = pure delta,
// 4 = hybrid cadence.
BENCHMARK(BM_RefineInnerLoop)->Arg(1)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

// Args = {ParOptions::overlap (0 = phased baseline, 1 = overlapped
// pipeline), nranks}.
BENCHMARK(BM_OverlapAB)
    ->Args({0, 4, 0})
    ->Args({1, 4, 0})
    ->Args({0, 4, 1})
    ->Args({1, 4, 1})
    ->Args({0, 8, 1})
    ->Args({1, 8, 1})
    ->Unit(benchmark::kMillisecond);

// Args = {heuristics (0 = defaults, 1 = RefinePlan::heuristics()), nranks}.
BENCHMARK(BM_FrontierAB)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond);

// Custom main instead of benchmark_main: stamp the pml transport into the
// benchmark context so published JSON records which backend carried the run.
int main(int argc, char** argv) {
  const bool machine_output = plv::bench::wants_machine_output(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!plv::bench::stamp_context_and_gate(machine_output)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
