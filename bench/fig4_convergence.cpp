// Fig. 4 — Convergence and Detection Quality with Social Networks.
//
// Compares, per outer-loop iteration (hierarchy level), the modularity
// (4a) and evolution ratio (4b) of three engines on the social-graph
// stand-ins: the sequential baseline, the parallel algorithm with the
// convergence heuristic, and the naive parallel algorithm without it.
// The paper's headline shape: heuristic ≈ sequential (occasionally
// better), naive converges slowly with low modularity.
#include <iostream>

#include "common/table.hpp"
#include "core/louvain_par.hpp"
#include "graph/csr.hpp"
#include "seq/louvain_seq.hpp"
#include "util.hpp"

int main() {
  plv::bench::banner(
      "Fig. 4: modularity (a) and evolution ratio (b) per outer iteration",
      "Real graphs (Amazon..Wikipedia) replaced by LFR stand-ins, see DESIGN.md.");

  plv::TextTable table({"graph", "engine", "outer-iter", "modularity",
                        "evolution-ratio"});
  plv::TextTable summary({"graph", "engine", "final Q", "levels", "communities"});

  for (const auto& graph : plv::bench::social_standins()) {
    const auto csr = plv::graph::Csr::from_edges(graph.edges, graph.n);

    struct Run {
      const char* engine;
      std::vector<double> q;
      std::vector<double> evo;
      double final_q;
      std::size_t levels;
      std::size_t communities;
    };
    std::vector<Run> runs;

    {
      const auto r = plv::seq::louvain(csr);
      Run run{"sequential", {}, {}, r.final_modularity, r.num_levels(), 0};
      double n_prev = static_cast<double>(graph.n);
      for (const auto& level : r.levels) {
        run.q.push_back(level.modularity);
        run.evo.push_back(static_cast<double>(level.num_communities) / n_prev);
        n_prev = static_cast<double>(level.num_communities);
      }
      run.communities = r.levels.empty() ? graph.n : r.levels.back().num_communities;
      runs.push_back(std::move(run));
    }
    for (bool heuristic : {true, false}) {
      plv::core::ParOptions opts;
      opts.nranks = 4;
      if (!heuristic) {
        opts.threshold = plv::core::ThresholdModel::kNone;
        opts.max_inner_iterations = 24;  // naive may oscillate; cap it
      }
      const auto r = plv::louvain(plv::GraphSource::from_edges(graph.edges, graph.n), opts);
      Run run{heuristic ? "parallel+heuristic" : "parallel-naive", {}, {},
              r.final_modularity, r.num_levels(), 0};
      double n_prev = static_cast<double>(graph.n);
      for (const auto& level : r.levels) {
        run.q.push_back(level.modularity);
        run.evo.push_back(static_cast<double>(level.num_communities) / n_prev);
        n_prev = static_cast<double>(level.num_communities);
      }
      run.communities = r.levels.empty() ? graph.n : r.levels.back().num_communities;
      runs.push_back(std::move(run));
    }

    for (const Run& run : runs) {
      for (std::size_t l = 0; l < run.q.size(); ++l) {
        table.row().add(graph.name).add(run.engine).add(l + 1).add(run.q[l]).add(
            run.evo[l]);
      }
      summary.row()
          .add(graph.name)
          .add(run.engine)
          .add(run.final_q)
          .add(run.levels)
          .add(run.communities);
    }
  }

  table.print();
  std::cout << "\nsummary (compare: heuristic tracks sequential; naive lags):\n";
  summary.print();
  return 0;
}
