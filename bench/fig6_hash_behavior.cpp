// Fig. 6 — Hash performance (a: entries per thread, b: average bin
// length, c: maximum bin length, d: load-factor sweep).
//
// Setup mirrors the paper: an R-MAT graph partitioned 1-D over "nodes";
// each node's edges are hashed into its table whose bins are split
// uniformly across its "threads". We compare Fibonacci vs linear
// congruential hashing, then sweep the load factor 1 → 1/8. Scaled to
// R-MAT 18 over 16 nodes x 32 threads (paper: scale 25, same layout).
#include <iostream>

#include "common/histogram.hpp"
#include "common/table.hpp"
#include "gen/rmat.hpp"
#include "graph/partition.hpp"
#include "hashing/bucket_table.hpp"
#include "util.hpp"

namespace {

constexpr int kNodes = 16;
constexpr int kThreadsPerNode = 32;

using plv::hashing::BinStats;
using plv::hashing::BucketTable;
using plv::hashing::HashKind;

struct NodeTables {
  std::vector<BucketTable> tables;  // one per node
};

NodeTables build(const plv::graph::EdgeList& edges, plv::vid_t n, HashKind kind,
                 double inv_load) {
  // Size each node's table so that entries/bins ≈ inv_load.
  const std::size_t per_node = 2 * edges.size() / kNodes;
  const auto bins = static_cast<std::size_t>(static_cast<double>(per_node) / inv_load);
  NodeTables out;
  plv::graph::Partition1D part(plv::graph::PartitionKind::kCyclic, n, kNodes);
  for (int node = 0; node < kNodes; ++node) out.tables.emplace_back(bins, kind);
  for (const plv::Edge& e : edges) {
    // Both endpoints own a copy of the edge, as in the In_Table layout.
    out.tables[static_cast<std::size_t>(part.owner(e.u))].insert_or_add(
        plv::pack_key(e.v, e.u), e.w);
    if (e.u != e.v) {
      out.tables[static_cast<std::size_t>(part.owner(e.v))].insert_or_add(
          plv::pack_key(e.u, e.v), e.w);
    }
  }
  return out;
}

/// Per-thread stats across all nodes (paper plots 16*32 = 512 points; we
/// report min/mean/max over the threads).
struct ThreadSummary {
  plv::Summary entries;
  plv::Summary avg_bin;
  std::uint64_t max_bin{0};
};

ThreadSummary summarize(const NodeTables& nodes) {
  ThreadSummary s;
  for (const BucketTable& t : nodes.tables) {
    const std::size_t per_thread = t.bin_count() / kThreadsPerNode;
    for (int th = 0; th < kThreadsPerNode; ++th) {
      const BinStats st =
          t.stats_range(static_cast<std::size_t>(th) * per_thread,
                        (static_cast<std::size_t>(th) + 1) * per_thread);
      s.entries.add(static_cast<double>(st.entries));
      if (st.nonempty_bins > 0) s.avg_bin.add(st.avg_bin_length);
      s.max_bin = std::max(s.max_bin, st.max_bin_length);
    }
  }
  return s;
}

}  // namespace

int main() {
  plv::bench::banner(
      "Fig. 6: hash load balance (a-c) and load-factor sweep (d)",
      "R-MAT scale 18 (paper: 25), 16 nodes x 32 threads, 1D cyclic split.");

  plv::gen::RmatParams rp;
  rp.scale = 18;
  rp.edge_factor = 16;
  rp.seed = 6;
  const auto edges = plv::gen::rmat(rp);
  const plv::vid_t n = 1u << rp.scale;
  std::cout << "graph: 2^" << rp.scale << " vertices, " << edges.size() << " edges\n\n";

  // (a-c): Fibonacci vs LCG at the paper's chosen 1/4 load factor.
  plv::TextTable abc({"hash", "entries/thread min", "mean", "max", "avg bin len (mean)",
                      "max bin len"});
  for (HashKind kind : {HashKind::kFibonacci, HashKind::kLinearCongruential,
                        HashKind::kBitwise, HashKind::kConcatenated}) {
    const auto nodes = build(edges, n, kind, 0.25);
    const ThreadSummary s = summarize(nodes);
    abc.row()
        .add(plv::hashing::hash_kind_name(kind))
        .add(s.entries.min, 0)
        .add(s.entries.mean(), 0)
        .add(s.entries.max, 0)
        .add(s.avg_bin.mean())
        .add(s.max_bin);
  }
  abc.print();
  std::cout << "(paper compares fibonacci vs lcg: max bin 3 vs 6 at their scale;\nbitwise/concat shown for contrast — structured keys break them)\n\n";

  // (d): load-factor sweep with Fibonacci.
  plv::TextTable d({"load factor", "avg bin len (mean over threads)", "max bin len"});
  for (double load : {1.0, 0.5, 0.25, 0.125}) {
    const auto nodes = build(edges, n, HashKind::kFibonacci, load);
    const ThreadSummary s = summarize(nodes);
    const char* name = load == 1.0 ? "1" : load == 0.5 ? "1/2" : load == 0.25 ? "1/4" : "1/8";
    d.row().add(name).add(s.avg_bin.mean()).add(s.max_bin);
  }
  d.print();
  std::cout << "(paper: avg bin length -> 1 at 1/8; 1/4 chosen as compromise)\n";
  return 0;
}
