// Table III — Quality Comparison on Community Structure.
//
// The paper's full similarity battery (NMI, F-measure, NVD, RI, ARI, JI)
// between the parallel and sequential partitions, on Amazon / ND-Web
// stand-ins and LFR graphs with μ = 0.4 and μ = 0.5. Expected shape:
// NVD close to 0, everything else close to 1.
#include <iostream>

#include "common/table.hpp"
#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "graph/csr.hpp"
#include "seq/louvain_seq.hpp"
#include "metrics/similarity.hpp"
#include "util.hpp"

namespace {

void add_row(plv::TextTable& table, const std::string& name,
             const plv::graph::EdgeList& edges, plv::vid_t n) {
  const auto csr = plv::graph::Csr::from_edges(edges, n);
  const auto seq = plv::seq::louvain(csr);
  plv::core::ParOptions opts;
  opts.nranks = 4;
  const auto par = plv::louvain(plv::GraphSource::from_edges(edges, n), opts);
  const auto s = plv::metrics::similarity(par.final_labels, seq.final_labels);
  table.row()
      .add(name)
      .add(s.nmi)
      .add(s.f_measure)
      .add(s.nvd)
      .add(s.rand_index)
      .add(s.adjusted_rand_index)
      .add(s.jaccard_index);
}

}  // namespace

int main() {
  plv::bench::banner("Table III: parallel-vs-sequential partition similarity",
                     "Rows: Amazon / ND-Web stand-ins + LFR(mu=0.4), LFR(mu=0.5).");

  plv::TextTable table({"Graphs", "NMI", "F-measure", "NVD", "RI", "ARI", "JI"});

  // Larger stand-ins than the other benches: partition agreement between
  // the two engines grows with graph size (more signal per community),
  // and Table III is exactly about that agreement.
  for (const auto& graph : plv::bench::social_standins(3.0)) {
    if (graph.name != "Amazon" && graph.name != "ND-Web") continue;
    add_row(table, graph.name, graph.edges, graph.n);
  }
  for (double mu : {0.4, 0.5}) {
    plv::gen::LfrParams p;
    p.n = 10000;
    p.c_min = 32;
    p.c_max = 256;
    p.mu = mu;
    p.seed = 77;
    const auto g = plv::gen::lfr(p);
    add_row(table, "LFR(mu=" + std::to_string(mu).substr(0, 3) + ")", g.edges, p.n);
  }
  table.print();

  std::cout << "\npaper's Table III for reference (their testbed):\n"
            << "  Amazon       0.9734 0.8159 0.1461 0.9989 0.6775 0.5123\n"
            << "  ND-Web       0.9848 0.9270 0.0510 0.9998 0.9219 0.8552\n"
            << "  LFR(mu=0.4)  0.9903 0.9452 0.0404 0.9999 0.9415 0.8895\n"
            << "  LFR(mu=0.5)  0.9833 0.9058 0.0683 0.9999 0.9034 0.8239\n";
  return 0;
}
