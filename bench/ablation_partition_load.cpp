// Ablation — 1-D partition kind, hash function, and table load factor
// inside the full algorithm (DESIGN.md items 2 and 4).
//
// The paper studies hashing in isolation (Fig. 6) and fixes cyclic
// ownership; this ablation closes the loop by measuring their effect on
// the end-to-end run: wall time, modularity and message volume.
#include <iostream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/louvain_par.hpp"
#include "gen/rmat.hpp"
#include "util.hpp"

int main() {
  plv::bench::banner("Ablation: partition kind x hash function x load factor",
                     "R-MAT scale 13 (skewed degrees stress the 1D split).");

  plv::gen::RmatParams rp;
  rp.scale = 13;
  rp.edge_factor = 8;
  rp.seed = 77;
  const auto edges = plv::gen::rmat(rp);
  const plv::vid_t n = 1u << rp.scale;

  plv::TextTable table({"partition", "hash", "load", "seconds", "Q", "records-sent"});
  using PK = plv::graph::PartitionKind;
  using HK = plv::hashing::HashKind;

  for (PK part : {PK::kCyclic, PK::kBlock}) {
    for (HK hash : {HK::kFibonacci, HK::kLinearCongruential, HK::kBitwise}) {
      for (double load : {0.25, 0.125}) {
        plv::core::ParOptions opts;
        opts.nranks = 4;
        opts.partition = part;
        opts.hash = hash;
        opts.table_max_load = load;
        plv::WallTimer t;
        const auto r = plv::louvain(plv::GraphSource::from_edges(edges, n), opts);
        table.row()
            .add(part == PK::kCyclic ? "cyclic" : "block")
            .add(plv::hashing::hash_kind_name(hash))
            .add(load, 3)
            .add(t.seconds())
            .add(r.final_modularity)
            .add(r.traffic.records_sent);
      }
    }
  }
  table.print();
  std::cout << "\nreading: results (Q, records) must be identical across hash and\n"
               "load settings — they only change table layout — while time varies;\n"
               "cyclic vs block may differ slightly (different tie-break exposure).\n";
  return 0;
}
