// Table IV — Performance Results of UK-2007 in the Literature.
//
// The paper compares its UK-2007 run (44.90 s, Q = 0.996, 128 P7 nodes)
// against published results. We cannot host a 3.8 G-edge web crawl;
// instead we run the largest BTER stand-in that fits this container and
// print our row next to the literature rows for context, with wall time
// and achieved modularity measured the same way (full hierarchy).
#include <iostream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/louvain_par.hpp"
#include "gen/bter.hpp"
#include "util.hpp"

int main() {
  plv::bench::banner("Table IV: largest-graph end-to-end run",
                     "UK-2007 (3,783.7M edges) -> BTER stand-in at container scale.");

  plv::gen::BterParams p;
  p.n = 100000;
  p.d_min = 4;
  p.d_max = 128;
  p.gcc_target = 0.5;
  p.seed = 13;
  const auto g = plv::gen::bter(p);
  std::cout << "stand-in: n=" << p.n << " edges=" << g.edges.size() << "\n\n";

  plv::core::ParOptions opts;
  opts.nranks = 4;
  plv::WallTimer t;
  const auto r = plv::louvain(plv::GraphSource::from_edges(g.edges, p.n), opts);
  const double seconds = t.seconds();

  plv::TextTable table({"Reference", "Time", "Modularity", "Processors", "System"});
  table.row().add("[7] Riedy et al.").add("504.9 s").add("N/A").add("4").add(
      "Intel E7-8870");
  table.row().add("[10] Staudt et al.").add("8 min").add("N/A").add("2").add(
      "Intel E5-2680");
  table.row().add("[12] Ovelgoenne").add("few hours").add("0.994").add("50 nodes").add(
      "Intel Xeon");
  table.row().add("IPDPS'15 paper").add("44.90 s").add("0.996").add("128 nodes").add(
      "Power 7");
  {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
    table.row()
        .add("this repro (BTER stand-in)")
        .add(buf)
        .add(r.final_modularity)
        .add("4 ranks / 1 core")
        .add("container");
  }
  table.print();

  std::cout << "\nlevels=" << r.num_levels() << ", records sent="
            << r.traffic.records_sent << ", MB sent="
            << static_cast<double>(r.traffic.bytes_sent) / 1e6 << '\n'
            << "The literature rows are copied from the paper for context; our\n"
               "row is measured on a graph ~38,000x smaller (hardware gate).\n";
  return 0;
}
