// Fig. 8 — Time breakdown with UK-2007.
//
// (a) per outer loop: REFINE vs GRAPH RECONSTRUCTION; (b) per inner loop
// of the first outer loop: FIND BEST COMMUNITY, UPDATE COMMUNITY
// INFORMATION, STATE PROPAGATION. The paper's UK-2007 (3.8 G edges) is
// replaced by the largest BTER we can run here; the shape to reproduce:
// the first outer loop dominates (>90%), REFINE dominates the outer loop,
// reconstruction is negligible, and FIND/UPDATE shrink per inner
// iteration while STATE PROPAGATION stays flat.
#include <iostream>

#include "common/table.hpp"
#include "core/louvain_par.hpp"
#include "gen/bter.hpp"
#include "util.hpp"

int main() {
  plv::bench::banner(
      "Fig. 8: execution time breakdown (outer loops, inner loops)",
      "UK-2007 replaced by BTER n=60k (paper: 105.9M vertices).");

  plv::gen::BterParams p;
  p.n = 60000;
  p.d_min = 4;
  p.d_max = 128;
  p.gcc_target = 0.4;
  p.seed = 8;
  const auto g = plv::gen::bter(p);
  std::cout << "graph: n=" << p.n << " edges=" << g.edges.size() << "\n\n";

  plv::core::ParOptions opts;
  opts.nranks = 4;
  const auto r = plv::louvain(plv::GraphSource::from_edges(g.edges, p.n), opts);

  // (a) Outer-loop breakdown: per level, REFINE (sum of inner phases) vs
  // GRAPH RECONSTRUCTION (level total minus refine).
  plv::TextTable outer({"outer-iter", "level-seconds", "refine-s", "reconstruction-s",
                        "share-of-total"});
  double total = 0;
  for (const auto& level : r.levels) total += level.seconds;
  for (std::size_t l = 0; l < r.levels.size(); ++l) {
    const auto& level = r.levels[l];
    double refine = 0;
    for (std::size_t i = 0; i < level.trace.find_seconds.size(); ++i) {
      refine += level.trace.find_seconds[i] + level.trace.update_seconds[i] +
                level.trace.prop_seconds[i];
    }
    outer.row()
        .add(l + 1)
        .add(level.seconds)
        .add(refine)
        .add(level.seconds - refine)
        .add(total > 0 ? level.seconds / total : 0.0);
  }
  outer.print();

  // (b) Inner-loop breakdown of the first outer loop, with the records the
  // (delta-maintained) STATE PROPAGATION actually shipped per iteration.
  std::cout << "\ninner loops of outer loop 1:\n";
  plv::TextTable inner({"inner-iter", "FIND BEST COMMUNITY", "UPDATE COMMUNITY INFO",
                        "STATE PROPAGATION", "prop-records", "moved-fraction"});
  if (!r.levels.empty()) {
    const auto& tr = r.levels.front().trace;
    for (std::size_t i = 0; i < tr.find_seconds.size(); ++i) {
      inner.row()
          .add(i + 1)
          .add(tr.find_seconds[i])
          .add(tr.update_seconds[i])
          .add(tr.prop_seconds[i])
          .add(tr.prop_records[i])
          .add(tr.moved_fraction[i]);
    }
  }
  inner.print();

  std::cout << "\naggregate phase timers (max over ranks):\n";
  plv::TextTable agg({"phase", "seconds"});
  for (const auto& [name, secs] : r.timers.items()) agg.row().add(name).add(secs);
  agg.print();

  // A/B: incremental Out_Table maintenance (default cadence) vs the legacy
  // rebuild-every-iteration propagation, same graph and (bit-compatible)
  // trajectory.
  plv::core::ParOptions legacy = opts;
  legacy.full_rebuild_every = 1;
  const auto r_legacy = plv::louvain(plv::GraphSource::from_edges(g.edges, p.n), legacy);
  auto total_prop_records = [](const plv::core::ParResult& res) {
    std::uint64_t sum = 0;
    for (const auto& level : res.levels) {
      for (std::uint64_t recs : level.trace.prop_records) sum += recs;
    }
    return sum;
  };
  std::cout << "\ndelta vs full-rebuild propagation (A/B):\n";
  plv::TextTable ab({"variant", "REFINE-s", "STATE PROPAGATION-s", "prop-records",
                     "records-sent-total"});
  ab.row()
      .add("delta (rebuild every " + std::to_string(opts.full_rebuild_every) + ")")
      .add(r.timers.get(plv::phase::kRefine))
      .add(r.timers.get(plv::phase::kStatePropagation))
      .add(total_prop_records(r))
      .add(r.traffic.records_sent);
  ab.row()
      .add("full rebuild every iteration")
      .add(r_legacy.timers.get(plv::phase::kRefine))
      .add(r_legacy.timers.get(plv::phase::kStatePropagation))
      .add(total_prop_records(r_legacy))
      .add(r_legacy.traffic.records_sent);
  ab.print();
  std::cout << "\npaper shape check: first outer loop >90% of total; REFINE >>\n"
               "GRAPH RECONSTRUCTION; FIND/UPDATE decay over inner iterations.\n"
               "With delta maintenance, STATE PROPAGATION records now *decay*\n"
               "with the moved fraction instead of staying flat at |In_Table|.\n";
  return 0;
}
