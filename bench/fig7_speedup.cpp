// Fig. 7 — Speedup with medium and large social graphs.
//
// The paper reports thread speedup (1 node, 2-32 threads) and node
// speedup (1-64 nodes) of the parallel engine relative to the sequential
// reference on LiveJournal, Wikipedia, UK-2005 and Twitter. We run the
// same sweep over rank counts on the medium stand-ins.
//
// HARDWARE GATE (DESIGN.md): this container exposes one CPU core, so
// ranks time-share it and wall-clock speedup > 1 is physically
// impossible here. We therefore report, per rank count: wall time,
// wall-clock "speedup" vs sequential (expected <= 1 here), and the
// communication volume — the quantities whose *trend* transfers to real
// parallel hardware.
#include <iostream>
#include <thread>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/louvain_par.hpp"
#include "graph/csr.hpp"
#include "seq/louvain_seq.hpp"
#include "util.hpp"

int main() {
  plv::bench::banner(
      "Fig. 7: rank-count sweep vs sequential baseline",
      "Medium social graphs -> LFR stand-ins; hardware gate: 1 core (" +
          std::to_string(std::thread::hardware_concurrency()) +
          " detected), see note in output.");

  plv::TextTable table({"graph", "ranks", "seconds", "speedup-vs-seq", "Q",
                        "records-sent", "MB-sent"});

  std::string transport;  // stamped by the first parallel run
  for (const auto& graph : plv::bench::social_standins()) {
    if (graph.name != "LiveJournal" && graph.name != "Wikipedia") continue;
    const auto csr = plv::graph::Csr::from_edges(graph.edges, graph.n);

    plv::WallTimer t;
    const auto seq = plv::seq::louvain(csr);
    const double seq_s = t.seconds();
    table.row()
        .add(graph.name)
        .add("seq")
        .add(seq_s)
        .add(1.0)
        .add(seq.final_modularity)
        .add(0)
        .add(0.0, 1);

    for (int ranks : {1, 2, 4, 8, 16}) {
      plv::core::ParOptions opts;
      opts.nranks = ranks;
      t.reset();
      const auto par =
          plv::louvain(plv::GraphSource::from_edges(graph.edges, graph.n), opts);
      const double par_s = t.seconds();
      transport = par.transport;
      table.row()
          .add(graph.name)
          .add(ranks)
          .add(par_s)
          .add(seq_s / par_s)
          .add(par.final_modularity)
          .add(par.traffic.records_sent)
          .add(static_cast<double>(par.traffic.bytes_sent) / 1e6, 1);
    }
  }
  table.print();
  std::cout << "\ntransport: " << transport << "\n";
  std::cout << "\nOn the paper's P7-IH, UK-2005 reached 49.8x on 64 nodes. On this\n"
               "single-core container the ranks time-share one core, so the wall-\n"
               "clock column cannot show speedup; the per-rank message volume\n"
               "(roughly flat per rank as ranks grow) is the scalability signal\n"
               "that transfers.\n";
  return 0;
}
