// Ablation — the convergence heuristic's parameters (DESIGN.md item 3).
//
// Sweeps the threshold model and its (p1, p2) parameters on a fixed LFR
// graph and reports final modularity, inner iterations spent, and total
// vertex moves. Answers: how sensitive is the heuristic to its fitted
// constants, and what does the literal Eq. 7 formula do compared to the
// decaying interpretation?
#include <iostream>
#include <numeric>

#include "common/table.hpp"
#include "core/louvain_par.hpp"
#include "gen/lfr.hpp"
#include "util.hpp"

namespace {

struct RunStats {
  double q;
  std::size_t levels;
  std::size_t inner_iters;
  double total_moved;
};

RunStats run(const plv::graph::EdgeList& edges, plv::vid_t n,
             plv::core::ThresholdModel model, double p1, double p2) {
  plv::core::ParOptions opts;
  opts.nranks = 4;
  opts.threshold = model;
  opts.p1 = p1;
  opts.p2 = p2;
  const auto r = plv::louvain(plv::GraphSource::from_edges(edges, n), opts);
  RunStats s{r.final_modularity, r.num_levels(), 0, 0.0};
  for (const auto& level : r.levels) {
    s.inner_iters += level.trace.moved_fraction.size();
    s.total_moved += std::accumulate(level.trace.moved_fraction.begin(),
                                     level.trace.moved_fraction.end(), 0.0);
  }
  return s;
}

}  // namespace

int main() {
  plv::bench::banner("Ablation: threshold model and (p1, p2) sensitivity",
                     "LFR n=8000 mu=0.4; kNone = naive parallel baseline.");

  plv::gen::LfrParams p;
  p.n = 8000;
  p.mu = 0.4;
  p.seed = 55;
  const auto g = plv::gen::lfr(p);

  plv::TextTable table({"model", "p1", "p2", "final Q", "levels", "inner-iters",
                        "sum moved-fraction"});
  using TM = plv::core::ThresholdModel;

  for (double p1 : {0.01, 0.03, 0.1}) {
    for (double p2 : {0.2, 0.3, 0.5}) {
      const auto s = run(g.edges, p.n, TM::kPaperEq7, p1, p2);
      table.row().add("eq7 (default model)").add(p1, 2).add(p2, 2).add(s.q).add(
          s.levels).add(s.inner_iters).add(s.total_moved);
    }
  }
  for (double p1 : {1.0, 1.4}) {
    for (double p2 : {2.5, 4.0}) {
      const auto s = run(g.edges, p.n, TM::kExponentialDecay, p1, p2);
      table.row().add("decay-to-zero").add(p1, 2).add(p2, 2).add(s.q).add(s.levels).add(
          s.inner_iters).add(s.total_moved);
    }
  }
  {
    const auto s = run(g.edges, p.n, TM::kNone, 0, 0);
    table.row().add("none (naive)").add("-").add("-").add(s.q).add(s.levels).add(
        s.inner_iters).add(s.total_moved);
  }
  table.print();

  std::cout << "\nreading: Eq. 7 is robust across (p1, p2) — similar final Q with\n"
               "fewer total moves than the naive variant. The decay-to-zero rows\n"
               "show why Eq. 7's floor matters: without it the inner loop freezes\n"
               "early and Q lands visibly lower (DESIGN.md, substitution table).\n";
  return 0;
}
